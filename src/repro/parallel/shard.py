"""Sharded frontier exploration across worker processes.

The engine's DFS subtrees below independent branch frames are solver-
independent (every per-path structure went context-local in PR 1-3), which
makes divide-and-conquer parallelization possible.  The scheme here keeps
the *output* provably identical to a serial run by reusing the summary
cache's exact-replay machinery as the merge point:

1. **Collect** (serial, in-process): a :class:`FrontierCollector` -- the
   ordinary engine with one twist -- explores the shallow prefix of the
   tree.  When it reaches a cache-eligible branch frame whose summary-cache
   key is computable (strategy token present, environment fingerprint
   prefix-independent) and whose estimated subtree cost clears the measured
   process-fence overhead (:class:`SchedulerCostModel`), it *defers* the
   whole subtree as a :class:`FrontierTask` instead of exploring it.
   Everything it does explore is recorded into the shared summary cache as
   usual (recordings that lost a subtree to a deferral are aborted, never
   stored), so no phase-1 work is wasted.
2. **Execute** (parallel): the tasks ship to a ``multiprocessing`` pool in
   deterministic cost order (largest estimate first, ties broken by region
   digest then capture order).  Task payloads cross the process fence
   structurally (term *trees*, see :mod:`repro.parallel.serialize`) because
   intern ids are process- and lifetime-local.  Each worker re-parses the
   program (MiniLang parses are deterministic, so node ids line up),
   re-interns the environment, and runs the engine from the shipped frame
   with its **own** :class:`~repro.solver.context.SolverContext`, lookahead
   walk memo and :class:`~repro.symexec.summary_cache.SummaryCache`.  No
   state is shared between workers.
3. **Merge** (serial): each worker returns its summary cache's entries,
   content-keyed exactly like the parent's.  They are decoded, re-interned
   and adopted into the shared cache in dispatch order
   (:func:`repro.parallel.merge.merge_shard_results`), and each shard's
   measured cost feeds the scheduler's online model.
4. **Chain** (stateful strategies only): a strategy with global mutable
   state -- the directed strategy's Fig. 6 sets -- produces replay tokens
   that depend on everything explored so far, so the keys captured for
   *later* shards of the first collection pass come from drifted sets and
   would never match at replay time (the speculation misses PR 4 recorded
   honestly as 0.2-0.3x on WBS/OAE).  The fix is to re-run the collector
   against the growing cache: each pass *replays* the now-cached earlier
   shards, which applies their recorded ``strategy_after`` snapshots
   (:meth:`~repro.symexec.strategy.ExplorationStrategy.restore_region`) and
   thereby chains the Fig. 6 sets through the shard capture order exactly
   as the final run will see them.  Frames whose first-pass key was wrong
   re-defer under their now-exact key and are re-dispatched; frames below
   the shipping threshold are explored natively and recorded under exact
   keys.  The waves converge (each pass's first deferral sits behind an
   all-replayed prefix, so its key is exact) and end with a pass that
   defers nothing -- after which **every** eligible frame of the final run
   is a cache hit: zero strategy-token-miss fallbacks, by construction.
5. **Replay** (serial): the caller then runs the *normal* serial engine
   over the shared cache.  Wherever it arrives at a deferred frame with
   the same key, it replays the worker's summary -- exactness of that
   replay is the summary cache's published contract, differentially tested
   since PR 2.  When the last collection pass deferred nothing, its own
   result already *is* the serial result and is returned on the report
   (``final_result``) so callers can skip the replay run entirely.

Determinism: the final summary is produced by the serial replay run in
DFS order, so the result is independent of worker scheduling and shard
order by construction -- parallel and serial runs emit the identical
distinct path conditions.
"""

from __future__ import annotations

import atexit
import hashlib
import multiprocessing
import os
import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro import faults, obs
from repro.obs.metrics import Histogram
from repro.cfg.builder import build_cfg
from repro.cfg.graph import ControlFlowGraph
from repro.cfg.ir import NodeKind
from repro.cfg.region_hash import RegionHashIndex
from repro.core.affected import AffectedSets
from repro.core.directed import DirectedExplorationStrategy
from repro.lang.ast_nodes import Program
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program
from repro.parallel.serialize import (
    SerializationError,
    decode_environment,
    decode_frames,
    decode_shard_result,
    encode_cache_entries,
    encode_environment,
    encode_frames,
    encode_shard_result,
)
from repro.solver.core import ConstraintSolver
from repro.symexec.engine import SymbolicExecutor
from repro.symexec.state import SymbolicState
from repro.symexec.strategy import ExplorationStrategy, ExploreEverything
from repro.symexec.summary_cache import SummaryCache


@dataclass(frozen=True)
class ShardConfig:
    """Tuning knobs for the frontier sharding scheme.

    Attributes:
        cold_split_depth: shipping prior for subtrees the cost model has
            never observed (no recorded path count, no measured shard
            time): defer them once they sit at least this many branch
            decisions deep.  Once a digest has been observed the depth
            plays no role -- the cost estimate alone decides.
        max_shards: hard cap on deferred subtrees per collection pass;
            frames beyond the cap are explored natively by the collector
            (and still end up in the cache via its ordinary recordings).
        min_shards: when the first collection pass defers fewer tasks than
            this, the pool is not woken -- process overhead would dominate
            the savings.  A stateless strategy leaves those subtrees to
            the caller's native exploration; a stateful one explores them
            inline in the next chained pass so its shard keys stay exact.
        pool_timeout_seconds: upper bound on the whole pool phase.  A
            worker killed mid-shard (OOM, CI memory cap) would otherwise
            block the dispatch loop forever; on expiry the remaining tasks
            are quarantined and their subtrees left to native exploration.
        task_timeout_seconds: per-task deadline for one shard attempt.  A
            single wedged shard costs one timeout, not the phase budget.
        max_task_retries: how many times a crashed or timed-out shard is
            re-dispatched to the pool before it is quarantined.
        retry_backoff_seconds: pause between retry rounds (lets a respawned
            worker settle; keeps a crash-looping schedule from spinning).
        quarantine_inline: when True, a quarantined task is executed inline
            in the parent as a last resort; when False (or when the inline
            run also fails) its subtree is simply left to the caller's
            native exploration -- a pure speed loss, never a wrong answer.
        cost_margin: a subtree ships only when its estimated cost is at
            least this multiple of the measured per-shard fence overhead
            (serialize + dispatch + IPC + merge).  Below the margin the
            fence would eat the win, so the frame stays inline.
        max_waves: safety cap on chained collection passes for stateful
            strategies.  Convergence normally takes 2-3 passes (each
            pass's first deferral is exact); the cap only matters when
            shards keep failing under fault injection.
    """

    cold_split_depth: int = 2
    max_shards: int = 256
    min_shards: int = 2
    pool_timeout_seconds: float = 600.0
    task_timeout_seconds: float = 60.0
    max_task_retries: int = 2
    retry_backoff_seconds: float = 0.05
    quarantine_inline: bool = True
    cost_margin: float = 1.5
    max_waves: int = 8


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


class SchedulerCostModel:
    """Online estimates of shard cost vs process-fence overhead.

    Replaces the fixed ``split_depth`` / ``min_task_paths`` knobs: instead
    of guessing which subtrees are worth a worker, the scheduler *measures*
    both sides of the trade and re-estimates as the store warms.

    * **Per-subtree cost** -- keyed by region digest (content-addressed, so
      estimates transfer across versions of a history and between full and
      directed runs over the same program).  A digest that has run as a
      shard before carries an EWMA of its measured worker seconds; one the
      summary cache has merely seen (``SummaryCache.size_hint``) is
      estimated from its recorded path count times the observed
      seconds-per-path rate.  Unknown digests fall back to the
      ``cold_split_depth`` prior.
    * **Fence overhead** -- an EWMA of the per-task overhead of each pool
      round: wall-clock pool+merge time minus the workers' own compute
      (divided by the effective parallelism), i.e. serialize + dispatch +
      IPC + decode + adopt.  A subtree ships only when its estimated cost
      clears ``fence_seconds * config.cost_margin``.
    * **Structural features** -- digests the model has never timed *and*
      the cache has never seen fall back to a bucketed regression over the
      region's structural features (node count, branch density, call
      count, max depth -- computed for free at region-hash time) before
      resorting to the ``cold_split_depth`` prior: a fresh version's new
      digests get estimated from what structurally similar regions cost.
    * **Variance** -- per-digest spread (EWMA of absolute estimate error)
      plus fence/shard-seconds histograms (:class:`~repro.obs.metrics.
      Histogram`, the same instrument the obs layer merges per run).  Ship
      decisions are variance-aware: a subtree whose estimate's spread
      straddles the fence stays inline, and a fresh process seeds its
      fence EWMA from the persisted histogram's percentiles instead of one
      sample.

    One process-global instance (:func:`scheduler_cost_model`) serves every
    run by default so a history sweep's later versions benefit from the
    earlier versions' measurements; tests and benchmarks that need cold,
    reproducible scheduling call :func:`reset_scheduler_cost_model`.
    Observations survive the process via :meth:`export_state` /
    :meth:`adopt_state`, persisted as a ``costmodel`` entry by
    :class:`repro.parallel.store.PersistentSummaryStore` (format 4).

    Chaos hygiene: callers must not feed observations from degraded or
    fault-injected rounds (see :func:`prewarm_parallel`) -- a model that
    never observes a faulted round cannot persist polluted estimates.
    """

    #: Never let a measured fence go below this: timer noise on a loaded
    #: box can make overhead appear to vanish, which would ship everything.
    FENCE_FLOOR_SECONDS = 0.0005

    #: Version stamp of the exported-state schema; :meth:`adopt_state`
    #: ignores states carrying any other version (forward/backward safe).
    STATE_VERSION = 1

    #: Hysteresis for the run-level gate: once a procedure has been proven
    #: cheaper inline, re-arming speculation requires its measured run cost
    #: to clear the round-overhead threshold by this factor, not merely
    #: cross it.  Near-fence procedures otherwise flap -- the first gated
    #: (inline) runs nudge the run EWMA up, a marginally re-armed round
    #: measures near-floor overhead on the warm pool and drags the fence
    #: EWMA down, and the shrinking threshold re-arms round after losing
    #: round.  A 4x margin only re-opens shipping when the workload itself
    #: grew, which is the one thing that can make speculation pay again.
    REARM_MARGIN = 4.0

    def __init__(
        self,
        fence_seconds: float = 0.003,
        seconds_per_path: float = 0.0005,
        alpha: float = 0.4,
    ):
        self.fence_seconds = fence_seconds
        self.seconds_per_path = seconds_per_path
        self.alpha = alpha
        self.observed_tasks = 0
        self.observed_rounds = 0
        self._digest_seconds: Dict[str, float] = {}
        self._digest_paths: Dict[str, int] = {}
        self._digest_spread: Dict[str, float] = {}
        self._run_seconds: Dict[str, float] = {}
        self._run_shards: Dict[str, float] = {}
        #: Procedures the run gate has turned inline; membership raises the
        #: re-arm bar to ``threshold * REARM_MARGIN`` (see REARM_MARGIN).
        self._run_gated: Set[str] = set()
        #: Bucketed feature regression: quantised structural features ->
        #: [observation count, total measured seconds].  Additive, so
        #: states from concurrent processes fold together losslessly.
        self._feature_buckets: Dict[str, List[float]] = {}
        self._fence_histogram = Histogram()
        self._shard_histogram = Histogram()

    @staticmethod
    def feature_bucket(features: Optional[Tuple[int, ...]]) -> Optional[str]:
        """Quantise a region's structural features into a coarse bucket key.

        Node count, call count and depth are log2-bucketed (regions within
        a factor of two of each other pool their observations); branch
        density -- branches per node -- lands in one of five linear bins.
        Coarse on purpose: a handful of artifact histories must populate
        the table densely enough that a *new* version's unseen digests hit
        a bucket some structurally similar region already paid to measure.
        """
        if not features or len(features) < 4:
            return None
        try:
            nodes, branches, calls, depth = (int(value) for value in features[:4])
        except (TypeError, ValueError):
            return None
        if nodes <= 0:
            return None
        density_bin = min(4, int(5.0 * branches / nodes))
        return (
            f"n{nodes.bit_length()}"
            f"b{density_bin}"
            f"c{max(calls, 0).bit_length()}"
            f"d{max(depth, 0).bit_length()}"
        )

    def feature_estimate(self, features: Optional[Tuple[int, ...]]) -> Optional[float]:
        """Mean measured seconds of the feature bucket, or None when empty."""
        bucket = self.feature_bucket(features)
        if bucket is None:
            return None
        stats = self._feature_buckets.get(bucket)
        if not stats or stats[0] <= 0:
            return None
        return stats[1] / stats[0]

    def estimate_seconds(
        self,
        digest: str,
        size_hint: Optional[int] = None,
        features: Optional[Tuple[int, ...]] = None,
    ) -> Optional[float]:
        """Estimated solve cost for the subtree ``digest``, or None if cold.

        Estimate sources, most specific first: the digest's own measured
        EWMA, its recorded path count times the seconds-per-path rate, and
        finally the structural-feature bucket.  Only a digest missing from
        all three is cold.
        """
        seconds = self._digest_seconds.get(digest)
        if seconds is not None:
            return seconds
        paths = self._digest_paths.get(digest)
        if paths is None:
            paths = size_hint
        if paths is not None:
            return paths * self.seconds_per_path
        return self.feature_estimate(features)

    def spread_seconds(self, digest: str) -> float:
        """EWMA of the digest's absolute estimate error (0 when unmeasured)."""
        return self._digest_spread.get(digest, 0.0)

    def should_ship(
        self,
        digest: str,
        depth: int,
        size_hint: Optional[int],
        config: ShardConfig,
        features: Optional[Tuple[int, ...]] = None,
    ) -> bool:
        estimate = self.estimate_seconds(digest, size_hint, features)
        if estimate is None:
            return depth >= config.cold_split_depth
        # Variance-aware: ship only when the whole plausible cost interval
        # [estimate - spread, estimate + spread] clears the fence.  An
        # estimate whose spread straddles the fence is a coin flip, and a
        # wrong ship costs a fence while a wrong inline costs only the
        # (near-fence-sized) subtree itself -- inline is the cheap error.
        spread = self._digest_spread.get(digest, 0.0)
        return estimate - spread >= self.fence_seconds * config.cost_margin

    def run_estimate(self, procedure: str) -> Optional[float]:
        """EWMA of the procedure's full (warm-cache) serial run cost."""
        return self._run_seconds.get(procedure)

    def should_speculate(self, procedure: str, config: ShardConfig) -> bool:
        """Whether shipping *any* shard of ``procedure`` can pay for itself.

        The per-digest fence test cannot protect a procedure whose entire
        run costs less than one pool round: every new version presents new
        (cold) digests, and the cold depth prior would ship them all.  The
        run-level gate compares the measured whole-run cost against the
        fence overhead of a typical round for this procedure (fence x
        recent shard count): below it, no split of the run can win, so the
        scheduler keeps the whole pass inline.  Unmeasured procedures
        speculate -- the cold prior needs one real round to learn from.

        The gate is sticky (see :data:`REARM_MARGIN`): a procedure it has
        turned inline stays inline until its run cost clears the threshold
        with margin, so timer drift on the threshold's inputs cannot flap
        the decision -- while a procedure is gated no rounds run, so the
        fence and shard-count EWMAs it is judged by stay frozen.
        """
        seconds = self._run_seconds.get(procedure)
        if seconds is None:
            return True
        shards = max(1.0, self._run_shards.get(procedure, 1.0))
        threshold = self.fence_seconds * config.cost_margin * shards
        if procedure in self._run_gated:
            if seconds < threshold * self.REARM_MARGIN:
                return False
            self._run_gated.discard(procedure)
            return True
        if seconds >= threshold:
            return True
        self._run_gated.add(procedure)
        return False

    def observe_run(self, procedure: str, seconds: float, shards: int) -> None:
        """Record one complete collection pass (a full serial run).

        ``shards`` updates the procedure's typical round size only when the
        run actually shipped -- a gated (inline) run says nothing about how
        many shards speculation would produce, and letting it decay the
        estimate to zero would re-arm speculation it just proved useless.
        """
        alpha = self.alpha
        previous = self._run_seconds.get(procedure)
        self._run_seconds[procedure] = (
            seconds if previous is None else (1 - alpha) * previous + alpha * seconds
        )
        if shards:
            prior = self._run_shards.get(procedure)
            self._run_shards[procedure] = (
                float(shards)
                if prior is None
                else (1 - alpha) * prior + alpha * shards
            )

    def observe_task(
        self,
        digest: str,
        paths: int,
        elapsed: float,
        features: Optional[Tuple[int, ...]] = None,
    ) -> None:
        """Record one shard's measured cost (worker wall clock)."""
        self.observed_tasks += 1
        alpha = self.alpha
        previous = self._digest_seconds.get(digest)
        if previous is not None:
            # Spread = EWMA of |measured - predicted|: how far this
            # digest's point estimate tends to be off, which is what the
            # variance-aware ship test weighs against the fence.
            error = abs(elapsed - previous)
            prior_spread = self._digest_spread.get(digest)
            self._digest_spread[digest] = (
                error
                if prior_spread is None
                else (1 - alpha) * prior_spread + alpha * error
            )
        self._digest_seconds[digest] = (
            elapsed if previous is None else (1 - alpha) * previous + alpha * elapsed
        )
        self._shard_histogram.observe(elapsed)
        bucket = self.feature_bucket(features)
        if bucket is not None:
            stats = self._feature_buckets.setdefault(bucket, [0.0, 0.0])
            stats[0] += 1
            stats[1] += elapsed
        if paths:
            if paths > self._digest_paths.get(digest, 0):
                self._digest_paths[digest] = paths
            self.seconds_per_path = (
                (1 - alpha) * self.seconds_per_path + alpha * (elapsed / paths)
            )

    def observe_round(
        self,
        shards: int,
        pool_seconds: float,
        merge_seconds: float,
        worker_elapsed: float,
        workers: int,
        failed: int = 0,
    ) -> None:
        """Record one pool round's measured per-task fence overhead.

        Degraded rounds are not observed: a crashed or timed-out shard's
        pool time measures the fault (deadline waits, retry backoff, pool
        rebuild), not the fence, and a few such rounds would inflate the
        estimate enough to stop all future shipping.  Faults must cost
        the run they occur in, never the scheduler's calibration.
        """
        if not shards or failed:
            return
        self.observed_rounds += 1
        parallelism = max(1, min(workers, _cpus()))
        overhead = pool_seconds + merge_seconds - worker_elapsed / parallelism
        per_task = max(self.FENCE_FLOOR_SECONDS, overhead / shards)
        self._fence_histogram.observe(per_task)
        self.fence_seconds = (1 - self.alpha) * self.fence_seconds + self.alpha * per_task

    # -- persistence -----------------------------------------------------------

    def export_state(self) -> Dict:
        """A pure-JSON snapshot of everything the model has learned.

        The inverse of :meth:`adopt_state`; persisted by
        :class:`repro.parallel.store.PersistentSummaryStore` as a
        ``costmodel`` entry so a fresh process schedules warm.
        """
        return {
            "version": self.STATE_VERSION,
            "fence_seconds": self.fence_seconds,
            "seconds_per_path": self.seconds_per_path,
            "observed_tasks": self.observed_tasks,
            "observed_rounds": self.observed_rounds,
            "digest_seconds": dict(self._digest_seconds),
            "digest_paths": dict(self._digest_paths),
            "digest_spread": dict(self._digest_spread),
            "run_seconds": dict(self._run_seconds),
            "run_shards": dict(self._run_shards),
            "run_gated": sorted(self._run_gated),
            "feature_buckets": {
                bucket: list(stats) for bucket, stats in self._feature_buckets.items()
            },
            "fence_histogram": self._fence_histogram.as_dict(),
            "shard_histogram": self._shard_histogram.as_dict(),
        }

    def adopt_state(self, state: object) -> int:
        """Fold a persisted state in; returns the digest estimates adopted.

        Local observations win: per-digest/per-run entries are adopted only
        for keys this model has not measured itself, and the scalar EWMAs
        are taken only while this model is still cold (it has observed no
        rounds/tasks of its own).  The fence EWMA is seeded from the
        persisted fence histogram's median when available -- a distribution
        summary survives one noisy round far better than the EWMA's final
        point value does.  Adoption is idempotent, and a state with an
        unknown version or malformed fields is ignored (returns 0 adopted;
        individually malformed entries are skipped).
        """
        if not isinstance(state, dict) or state.get("version") != self.STATE_VERSION:
            return 0
        if self.observed_rounds == 0:
            fence_histogram = state.get("fence_histogram")
            if isinstance(fence_histogram, dict) and self._fence_histogram.count == 0:
                self._fence_histogram.merge_dict(fence_histogram)
            try:
                stored_rounds = int(state.get("observed_rounds", 0))
                stored_fence = float(state.get("fence_seconds", 0.0))
            except (TypeError, ValueError):
                stored_rounds, stored_fence = 0, 0.0
            if stored_rounds > 0 and stored_fence > 0.0:
                seeded = self._fence_histogram.percentile(0.5)
                if seeded is None:
                    seeded = stored_fence
                self.fence_seconds = max(self.FENCE_FLOOR_SECONDS, seeded)
                self.observed_rounds = stored_rounds
        if self.observed_tasks == 0:
            shard_histogram = state.get("shard_histogram")
            if isinstance(shard_histogram, dict) and self._shard_histogram.count == 0:
                self._shard_histogram.merge_dict(shard_histogram)
            try:
                stored_tasks = int(state.get("observed_tasks", 0))
                stored_rate = float(state.get("seconds_per_path", 0.0))
            except (TypeError, ValueError):
                stored_tasks, stored_rate = 0, 0.0
            if stored_tasks > 0 and stored_rate > 0.0:
                self.seconds_per_path = stored_rate
                self.observed_tasks = stored_tasks
        adopted = self._adopt_float_map(state, "digest_seconds", self._digest_seconds)
        self._adopt_float_map(state, "digest_spread", self._digest_spread)
        self._adopt_float_map(state, "run_seconds", self._run_seconds)
        self._adopt_float_map(state, "run_shards", self._run_shards)
        gated = state.get("run_gated")
        if isinstance(gated, (list, tuple)):
            # "Proven cheaper inline" carries across processes like any
            # other observation; a procedure this model re-arms later
            # simply leaves the set again.
            self._run_gated.update(
                proc for proc in gated if isinstance(proc, str)
            )
        paths = state.get("digest_paths")
        if isinstance(paths, dict):
            for digest, count in paths.items():
                try:
                    count = int(count)
                except (TypeError, ValueError):
                    continue
                if count > self._digest_paths.get(digest, 0):
                    self._digest_paths[digest] = count
        buckets = state.get("feature_buckets")
        if isinstance(buckets, dict):
            for bucket, stats in buckets.items():
                if bucket in self._feature_buckets:
                    continue
                try:
                    count, total = float(stats[0]), float(stats[1])
                except (TypeError, ValueError, IndexError):
                    continue
                if count > 0:
                    self._feature_buckets[str(bucket)] = [count, total]
        return adopted

    @staticmethod
    def _adopt_float_map(state: Dict, field_name: str, target: Dict[str, float]) -> int:
        """setdefault-adopt a str->float map from ``state``; counts adoptions."""
        source = state.get(field_name)
        if not isinstance(source, dict):
            return 0
        adopted = 0
        for key, value in source.items():
            if key in target:
                continue
            try:
                target[str(key)] = float(value)
            except (TypeError, ValueError):
                continue
            adopted += 1
        return adopted


_COST_MODEL = SchedulerCostModel()


def scheduler_cost_model() -> SchedulerCostModel:
    """The process-global cost model shared by every parallel run."""
    return _COST_MODEL


def reset_scheduler_cost_model() -> SchedulerCostModel:
    """Replace the global cost model with a cold one (tests / benchmarks)."""
    global _COST_MODEL
    _COST_MODEL = SchedulerCostModel()
    return _COST_MODEL


@dataclass
class FrontierTask:
    """One deferred subtree: its cache key plus the worker payload.

    Deliberately *not* the captured :class:`SymbolicState` itself -- tasks
    outlive the collection pass (they are held through the pool run), and
    the payload's encoded term trees are all the worker needs; the merged
    entries pin their own decoded terms.
    """

    key: tuple
    payload: Dict
    #: Structural features of the shard root's region (from
    #: :class:`~repro.cfg.region_hash.RegionSignature`), carried so the
    #: dispatch order and the post-round observation can consult the cost
    #: model's feature regression for digests it has never timed.
    features: Tuple[int, ...] = ()


@dataclass
class ParallelReport:
    """What the prewarm pass did (surfaced through DiSE metrics and benches)."""

    workers: int = 0
    frontier_frames: int = 0
    shards: int = 0
    #: Collection passes run.  1 for stateless strategies; a stateful
    #: strategy converges in >= 2 (the last pass verifies nothing is left
    #: to defer and records the remaining inline subtrees exactly).
    waves: int = 0
    #: Tasks dispatched by chained passes after the first -- shards whose
    #: first-pass key was captured from drifted strategy state and had to
    #: be re-executed under the exact, chained key.
    respeculated_shards: int = 0
    #: Eligible frames the cost model kept inline because their estimated
    #: subtree was cheaper than the measured process-fence overhead.
    cost_inline: int = 0
    #: First-wave shards the scheduler got wrong: shipped blind (no
    #: estimate from any source -- the cold depth prior decided) or whose
    #: measured cost landed on the opposite side of the fence threshold
    #: from the estimate that shipped them.  The warm-start benchmark
    #: gates this: a persisted model must misestimate strictly less than
    #: a cold one on the same fresh-process run.
    first_wave_misestimates: int = 0
    merged_entries: int = 0
    worker_paths: int = 0
    worker_states: int = 0
    #: Shards that produced no result at all (pool attempts exhausted and
    #: the quarantine pass failed or was disabled); their subtrees are left
    #: to the caller's native exploration.
    failed_shards: int = 0
    #: Shards re-dispatched to the pool at least once after a crash/timeout.
    retried_shards: int = 0
    #: Shards that exhausted their pool retries and went to the quarantine
    #: pass (inline execution or native fallback).
    quarantined_shards: int = 0
    #: Entries merged from *surviving* shards of a run that had failures --
    #: what partial salvage rescued (0 on a clean run, where it would just
    #: duplicate ``merged_entries``).
    salvaged_entries: int = 0
    #: Human-readable "shard N attempt A: ExcType: message" strings (capped).
    failure_reasons: List[str] = field(default_factory=list)
    collect_seconds: float = 0.0
    pool_seconds: float = 0.0
    merge_seconds: float = 0.0
    worker_elapsed_total: float = 0.0
    #: The last collection pass's complete :class:`ExecutionResult` when it
    #: deferred nothing -- that pass was an ordinary serial run over the
    #: warm cache, so its summary *is* the parallel result and the caller
    #: may skip the replay run.  Never set when any subtree was left
    #: unexplored.  (Excluded from :meth:`as_dict`: it is an in-process
    #: object, not a metric.)
    final_result: Optional[object] = field(default=None, repr=False, compare=False)

    def as_dict(self) -> Dict[str, float]:
        return {
            "workers": self.workers,
            "frontier_frames": self.frontier_frames,
            "shards": self.shards,
            "waves": self.waves,
            "respeculated_shards": self.respeculated_shards,
            "cost_inline": self.cost_inline,
            "first_wave_misestimates": self.first_wave_misestimates,
            "merged_entries": self.merged_entries,
            "worker_paths": self.worker_paths,
            "worker_states": self.worker_states,
            "failed_shards": self.failed_shards,
            "retried_shards": self.retried_shards,
            "quarantined_shards": self.quarantined_shards,
            "salvaged_entries": self.salvaged_entries,
            "failure_reasons": list(self.failure_reasons),
            "collect_seconds": round(self.collect_seconds, 6),
            "pool_seconds": round(self.pool_seconds, 6),
            "merge_seconds": round(self.merge_seconds, 6),
            "worker_elapsed_total": round(self.worker_elapsed_total, 6),
        }


# -- phase 1: frontier collection ---------------------------------------------


class FrontierCollector(SymbolicExecutor):
    """The engine, except that shippable eligible subtrees are deferred.

    The collector runs with the *shared* summary cache: subtrees it does
    complete are recorded for the replay run, cache hits short-circuit
    exactly as in a serial run (replaying an earlier shard's entry also
    applies its ``strategy_after`` snapshot -- the set-chaining mechanism),
    and only recordings truncated by a deferral are aborted.  Strategy
    note: ``on_state`` fires once for a deferred frame here and once again
    in the replay run, mirroring how the replay run itself revisits the
    frame; the built-in strategies' set updates are idempotent, which is
    the documented requirement for custom ones.
    """

    def __init__(
        self,
        *args,
        config: ShardConfig,
        strategy_payload,
        cost_model: Optional[SchedulerCostModel] = None,
        skip_keys: Optional[Set[tuple]] = None,
        ship_enabled: bool = True,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        if self.summary_cache is None:
            raise ValueError("FrontierCollector requires a summary cache")
        self.config = config
        #: When the run-level gate decided the whole procedure is cheaper
        #: than one pool fence, the pass runs as a plain engine run.
        self.ship_enabled = ship_enabled
        #: Callback producing the strategy part of a worker payload at
        #: capture time (strategy state is mutable; it must be snapshotted
        #: the moment the frame is deferred).
        self.strategy_payload = strategy_payload
        self.cost_model = cost_model if cost_model is not None else scheduler_cost_model()
        #: Keys an earlier wave gave up on (failed shards, below-min_shards
        #: first passes): explored natively so the subtree still gets
        #: recorded under its exact key.
        self.skip_keys = skip_keys if skip_keys is not None else set()
        self.tasks: List[FrontierTask] = []
        self._task_keys = set()
        self.frontier_frames = 0
        self.cost_inline = 0

    def _visit(self, state, summary, tree_node, edge_label=""):
        if self._defer(state, edge_label):
            return [], None
        return super()._visit(state, summary, tree_node, edge_label)

    def _defer(self, state: SymbolicState, edge_label: str) -> bool:
        """Decide whether to defer ``state``'s subtree; capture it if so."""
        if not self.ship_enabled:
            return False
        node = state.node
        if state.depth < 1:
            return False
        if node.kind in (NodeKind.END, NodeKind.ERROR):
            return False
        if self.depth_bound is not None and state.depth > self.depth_bound:
            return False
        if not self._cache_root_eligible(node, edge_label):
            return False
        # The strategy token must reflect the sets *after* this node's
        # on_state update, exactly as it will at replay-probe time.  When
        # the frame is not deferred after all, the ordinary visit applies
        # on_state again -- strategy set updates are idempotent (see the
        # class docstring), so the early call is safe.
        self.strategy.on_state(state)
        signature = self.region_index.signature(node)
        token = self.strategy.replay_token(state, signature)
        if token is None:
            return False
        fingerprint = self._fingerprint(
            state.env_map(), signature, state.path_condition.constraints, state.frames
        )
        if fingerprint is None:
            return False
        budget = None if self.depth_bound is None else self.depth_bound - state.depth
        key = ("suffix", signature.digest, fingerprint, token, budget)
        if self.summary_cache.contains(key):
            # Already summarised (earlier version, earlier shard, earlier
            # sibling): let the ordinary visit replay it.
            return False
        if key in self.skip_keys:
            return False
        if not self.cost_model.should_ship(
            signature.digest,
            state.depth,
            self.summary_cache.size_hint(signature.digest),
            self.config,
            features=signature.features,
        ):
            # Cheaper to solve here than to ship: the ordinary visit
            # explores it and the recording carries its exact key.
            self.cost_inline += 1
            return False
        duplicate = key in self._task_keys
        if not duplicate and len(self.tasks) >= self.config.max_shards:
            return False
        # Committed to deferring.  No boundary-crossing capture is needed:
        # every open segment recording is aborted below (its segment lost a
        # subtree), so a capture could never be stored.
        self.frontier_frames += 1
        if duplicate:
            # A duplicate frame: one worker execution serves both replays.
            self._abort_open_recordings()
            return True
        self._task_keys.add(key)
        self.tasks.append(
            FrontierTask(
                key=key,
                features=signature.features,
                payload={
                    "root": node.node_id,
                    "edge": edge_label,
                    "environment": encode_environment(state.environment),
                    "frames": encode_frames(state.frames),
                    "depth_bound": budget,
                    "strategy": self.strategy_payload(state),
                },
            )
        )
        self._abort_open_recordings()
        return True


# -- worker-side strategy reconstruction --------------------------------------


class _ShardDirectedStrategy(DirectedExplorationStrategy):
    """A directed strategy resumed mid-run inside a worker process.

    The Fig. 6 global sets are installed from the shipped snapshot instead
    of the run-start reset; whether the *prefix* (which the worker never
    sees) already covered an affected node arrives as a precomputed bit and
    is folded into ``should_force_completion`` and the replay token's
    covered-bit, so nested cache entries recorded by the worker carry the
    same tokens a serial run would compute.  The shipped sets themselves
    are exact by the time a shard actually replays: the chained collection
    waves capture them behind an all-replayed prefix (see the module
    docstring).
    """

    def __init__(self, *args, initial_sets: Dict[str, List[int]], prefix_covered: bool, **kwargs):
        super().__init__(*args, **kwargs)
        self._initial_sets = initial_sets
        self.prefix_covered = prefix_covered

    def on_run_start(self, initial_state: SymbolicState) -> None:
        super().on_run_start(initial_state)
        self.unex_cond = set(self._initial_sets["unex_cond"])
        self.unex_write = set(self._initial_sets["unex_write"])
        self.ex_cond = set(self._initial_sets["ex_cond"])
        self.ex_write = set(self._initial_sets["ex_write"])

    def should_force_completion(self, state: SymbolicState) -> bool:
        if self.prefix_covered and self.enable_pruning and self.complete_covered_paths:
            return True
        return super().should_force_completion(state)

    def replay_token(self, state, region):
        token = super().replay_token(state, region)
        if token is None or not self.complete_covered_paths:
            return token
        return token[:-1] + (bool(token[-1]) or self.prefix_covered,)


def _directed_strategy_payload(strategy: DirectedExplorationStrategy, state: SymbolicState) -> Dict:
    """Snapshot a directed strategy for one deferred frame's worker."""
    affected_ids = strategy.affected.acn | strategy.affected.awn
    return {
        "kind": "directed",
        "acn": sorted(strategy.affected.acn),
        "awn": sorted(strategy.affected.awn),
        "sets": {
            "unex_cond": sorted(strategy.unex_cond),
            "unex_write": sorted(strategy.unex_write),
            "ex_cond": sorted(strategy.ex_cond),
            "ex_write": sorted(strategy.ex_write),
        },
        "enable_reset": strategy.enable_reset,
        "enable_pruning": strategy.enable_pruning,
        "complete_covered_paths": strategy.complete_covered_paths,
        "prefix_covered": any(node_id in affected_ids for node_id in state.trace),
        "lookahead": strategy.lookahead is not None,
        "lookahead_memoize": strategy.lookahead.memoize if strategy.lookahead is not None else True,
    }


def _build_worker_strategy(spec: Dict, cfg: ControlFlowGraph, solver: ConstraintSolver) -> ExplorationStrategy:
    kind = spec.get("kind")
    if kind == "everything":
        return ExploreEverything()
    if kind == "directed":
        affected = AffectedSets(cfg=cfg, acn=set(spec["acn"]), awn=set(spec["awn"]))
        return _ShardDirectedStrategy(
            cfg,
            affected,
            enable_reset=spec["enable_reset"],
            enable_pruning=spec["enable_pruning"],
            complete_covered_paths=spec["complete_covered_paths"],
            solver=solver,
            feasibility_lookahead=spec["lookahead"],
            lookahead_memoize=spec["lookahead_memoize"],
            initial_sets=spec["sets"],
            prefix_covered=spec["prefix_covered"],
        )
    raise ValueError(f"Unknown worker strategy kind {kind!r}")


# -- phase 2: the worker -------------------------------------------------------


#: Worker-local parse/CFG memo: a pool worker serves many shards of the
#: same program text (and of the same history's version texts), so each
#: text is parsed and CFG-built once per worker process.
_WORKER_PROGRAMS: Dict[Tuple[str, str], Tuple[Program, ControlFlowGraph]] = {}


def _worker_program(source: str, procedure_name: str) -> Tuple[Program, ControlFlowGraph]:
    key = (source, procedure_name)
    cached = _WORKER_PROGRAMS.get(key)
    if cached is None:
        program = parse_program(source)
        cached = (program, build_cfg(program, procedure_name))
        if len(_WORKER_PROGRAMS) >= 256:
            _WORKER_PROGRAMS.clear()
        _WORKER_PROGRAMS[key] = cached
    return cached


def run_shard(payload: Dict) -> Dict:
    """Execute one deferred subtree in this (worker) process.

    Top-level so it is picklable for ``multiprocessing``; everything it
    needs arrives in the payload and everything it produces leaves as a
    JSON-compatible :func:`~repro.parallel.serialize.encode_shard_result`
    envelope -- no interned object ever crosses the fence.
    """
    started = time.perf_counter()
    plan = None
    fault_spec = payload.get("faults")
    if fault_spec:
        # Chaos schedules ship inside the payload (workers are forked
        # lazily and reused across runs; environment-based arming would be
        # both racy and sticky).  The install is cleared before returning
        # so a reused worker never fires a stale schedule on a clean task.
        plan = faults.FaultPlan.from_payload(fault_spec)
        plan.in_worker = True
        faults.install(plan)
    obs_spec = payload.get("obs")
    recorder = None
    previous_recorder = None
    if isinstance(obs_spec, dict):
        # The propagated trace context: this shard records its own spans
        # (relative to its own clock epoch) and ships them home in the
        # result envelope; the parent rebases them under the wave's pool
        # span.  The previous recorder is saved because a quarantined task
        # runs this function *inline in the parent*, where the parent's
        # recorder is the active one.
        recorder = obs.worker_recorder(detail=bool(obs_spec.get("detail")))
        previous_recorder = obs.install(recorder)
        recorder.start_span(
            "shard.run",
            "shard",
            root=payload.get("root"),
            procedure=payload.get("procedure"),
            attempt=payload.get("fault_attempt", 0),
        )
    try:
        result = _run_shard_inner(payload, plan, started)
        if recorder is not None:
            recorder.finish()
            result["obs"] = recorder.export_payload()
        return result
    finally:
        if recorder is not None:
            obs.install(previous_recorder)
        if plan is not None:
            faults.clear()


def _run_shard_inner(payload: Dict, plan, started: float) -> Dict:
    if plan is not None:
        ident = f"{payload.get('fault_ident', 'task')}|a{payload.get('fault_attempt', 0)}"
        plan.maybe_worker_fault(ident)
    procedure_name = payload["procedure"]
    program, cfg = _worker_program(payload["source"], procedure_name)
    root = cfg.node(payload["root"])
    environment = decode_environment(payload["environment"])
    entry_state = SymbolicState.make(
        node=root,
        environment=environment,
        trace=(root.node_id,),
        frames=decode_frames(payload.get("frames", [])),
    )
    # The worker's solver must decide exactly what the parent's would: a
    # different integer bound could flip a subtree branch verdict and the
    # replay run would trust the divergent summary.  The spec is required
    # -- a payload without one fails loudly instead of silently deciding
    # under default bounds.
    solver_spec = payload["solver"]
    solver = ConstraintSolver(
        bound=solver_spec["bound"],
        max_branch_steps=solver_spec["max_branch_steps"],
    )
    strategy = _build_worker_strategy(payload["strategy"], cfg, solver)
    cache = SummaryCache()
    executor = SymbolicExecutor(
        program,
        procedure_name=procedure_name,
        cfg=cfg,
        solver=solver,
        depth_bound=payload["depth_bound"],
        strategy=strategy,
        summary_cache=cache,
        entry_state=entry_state,
        entry_edge_label=payload.get("edge", ""),
    )
    result = executor.run()
    recorder = obs.active()
    if recorder is not None:
        # Additive counters only: counters merge by summation across every
        # shard of a wave, unlike gauges (last-writer-wins), so per-worker
        # statistics aggregate correctly parent-side.
        recorder.metrics.inc("worker.solver_queries", solver.statistics.queries)
        recorder.metrics.inc("worker.cache_stores", cache.statistics.stores)
        recorder.metrics.inc("worker.paths", len(result.summary))
        recorder.metrics.inc("worker.states", result.statistics.states_explored)
    entries = cache.iter_entries()
    if payload.get("roots_only"):
        # The caller's cache is ephemeral (single parallel run): only the
        # shard root's summaries can be replayed there, so shipping the
        # nested entries would be pure encode/decode overhead.  A shared
        # history cache gets everything -- nested regions seed later
        # versions.
        root_digest = executor.region_index.signature(root).digest
        entries = (
            (key, summary, pins)
            for key, summary, pins in entries
            if key[1] == root_digest
        )
    return encode_shard_result(
        entries=encode_cache_entries(entries),
        paths=len(result.summary),
        states=result.statistics.states_explored,
        elapsed=time.perf_counter() - started,
    )


# -- pool management -----------------------------------------------------------

_POOLS: Dict[int, multiprocessing.pool.Pool] = {}


def _get_pool(workers: int) -> multiprocessing.pool.Pool:
    """A lazily created, process-wide pool per worker count.

    Workers are stateless (each task ships everything it needs), so pools
    are safely reused across runs -- repeated ``DiSE(workers=N)`` calls in
    a history sweep pay the fork cost once.
    """
    pool = _POOLS.get(workers)
    if pool is None:
        pool = multiprocessing.get_context().Pool(processes=workers)
        _POOLS[workers] = pool
    return pool


def _discard_pool(workers: int) -> None:
    """Terminate and forget one cached pool (it misbehaved; never reuse it)."""
    pool = _POOLS.pop(workers, None)
    if pool is not None:
        pool.terminate()
        pool.join()


def warm_pool(workers: int) -> None:
    """Pre-fork the worker pool so a later run's timing excludes the fork cost.

    Benchmarks call this before their timed region; ordinary clients never
    need to (the first parallel run forks lazily).
    """
    _get_pool(workers)


def shutdown_pools() -> None:
    """Terminate every cached worker pool (idempotent; also runs at exit)."""
    for pool in _POOLS.values():
        pool.terminate()
        pool.join()
    _POOLS.clear()


atexit.register(shutdown_pools)


# -- the scheduler -------------------------------------------------------------


def prewarm_parallel(
    program: Program,
    procedure_name: str,
    cfg: ControlFlowGraph,
    strategy_factory,
    payload_factory,
    summary_cache: SummaryCache,
    workers: int,
    depth_bound: Optional[int] = None,
    config: Optional[ShardConfig] = None,
    region_index: Optional[RegionHashIndex] = None,
    solver: Optional[ConstraintSolver] = None,
    source: Optional[str] = None,
    roots_only: bool = False,
    cost_model: Optional[SchedulerCostModel] = None,
    want_final_result: bool = True,
    run_key: Optional[str] = None,
) -> ParallelReport:
    """Run the collect/execute/merge phases, leaving ``summary_cache`` warm.

    ``strategy_factory()`` must build a fresh strategy configured exactly
    like the caller's real one -- each collection pass consumes its own
    instance, and a stateful strategy needs a clean run-start per pass so
    the chained replays rebuild its sets exactly.  ``payload_factory``
    takes that instance and returns the per-frame snapshot callback
    (``payload_factory(strategy)(state) -> dict``).

    ``roots_only`` asks workers to ship only their shard-root summaries;
    callers set it when the cache is ephemeral (single run) and nested
    entries could never be replayed anyway.

    The caller then runs its ordinary serial engine against the same cache
    -- unless ``report.final_result`` is set, in which case the last
    collection pass already was that run.  See the module docstring for
    why either way guarantees serial-identical output.

    ``want_final_result`` says whether the caller can adopt
    ``report.final_result`` in place of its own serial run.  When it
    cannot (DiSE needs its own strategy run; tracked-variable runs need
    the real executor), a run-level gate decision to keep everything
    inline returns immediately -- a collection pass whose result would be
    discarded is pure overhead -- and a stateless strategy stops after
    its one shipping round instead of paying a confirmation pass.
    """
    from repro.parallel.merge import merge_shard_results

    config = config or ShardConfig()
    model = cost_model if cost_model is not None else scheduler_cost_model()
    report = ParallelReport(workers=workers)

    # Run-level cost estimates are scoped per (strategy kind, procedure):
    # a directed pass explores a fraction of what a full pass does, and
    # mixing their measured run costs would let a cheap directed sweep
    # wrongly gate the next full run inline (or vice versa).
    run_key = run_key if run_key is not None else procedure_name
    speculate = model.should_speculate(run_key, config)
    if not speculate and not want_final_result:
        # The whole run is cheaper than one pool fence and the caller will
        # run serially anyway: stay out of the way entirely.
        return report

    source = source if source is not None else pretty_program(program)

    # Under an active fault plan every measurement is suspect -- a wedged
    # worker that still finishes reports inflated seconds, a crashed round's
    # pool time measures the fault -- so the model observes *nothing*:
    # faulted runs can never pollute the estimates that format-4 stores
    # persist for future processes.
    plan_active = faults.active_plan() is not None

    chained: Optional[bool] = None
    solver_spec: Optional[Dict] = None
    skip_keys: Set[tuple] = set()

    recorder = obs.active()
    obs_context = obs.worker_context()

    while report.waves < config.max_waves:
        strategy = strategy_factory()
        if chained is None:
            chained = strategy.has_global_state
        # One span per chained collection pass; the collect/pool/merge
        # phases nest inside it and worker shard spans are adopted under
        # the pool phase, so the exported flame chart shows exactly how a
        # wave's wall clock was spent.  ``obs.timed`` replaces the ad-hoc
        # perf_counter bookkeeping: the report's seconds and the trace's
        # spans now come from the same clock readings.
        with obs.span("parallel.wave", "parallel", wave=report.waves, procedure=procedure_name):
            collector = FrontierCollector(
                program,
                procedure_name=procedure_name,
                cfg=cfg,
                solver=solver,
                depth_bound=depth_bound,
                strategy=strategy,
                summary_cache=summary_cache,
                region_index=region_index,
                config=config,
                strategy_payload=payload_factory(strategy),
                cost_model=model,
                skip_keys=skip_keys,
                ship_enabled=speculate,
            )
            with obs.timed("parallel.collect", "parallel", wave=report.waves) as collect_timer:
                wave_result = collector.run()
            wave_seconds = collect_timer.seconds
            report.collect_seconds += wave_seconds
            first_wave = report.waves == 0
            report.waves += 1
            report.frontier_frames += collector.frontier_frames
            report.cost_inline += collector.cost_inline
            tasks = collector.tasks

            if collector.frontier_frames == 0:
                # Nothing was deferred (or everything already replays): this
                # pass was a complete serial run over the warm cache, so its
                # result is the parallel result.  Its wall clock is also the
                # measured cost of *not* shipping -- what the run-level gate
                # weighs against the fence next time.
                report.final_result = wave_result
                degraded = (
                    getattr(getattr(wave_result, "statistics", None), "completeness", "complete")
                    != "complete"
                )
                if not plan_active and not degraded:
                    model.observe_run(run_key, wave_seconds, shards=report.shards)
                break
            if first_wave and len(tasks) < config.min_shards:
                # Too few tasks to wake the pool.  The next pass explores them
                # natively (recording exact keys) and, deferring nothing,
                # becomes the adoptable final run.  A stateless caller that
                # cannot adopt it falls back to its own native run instead.
                skip_keys.update(task.key for task in tasks)
                if not chained and not want_final_result:
                    break
                continue

            report.shards += len(tasks)
            if not first_wave:
                report.respeculated_shards += len(tasks)

            if solver_spec is None:
                # Workers must mirror the caller's solver configuration (the
                # collector shares the caller's solver, so read it from there
                # when none was given).
                run_solver = solver if solver is not None else collector.solver
                solver_spec = {
                    "bound": run_solver.bound,
                    "max_branch_steps": run_solver.max_branch_steps,
                }

            ordered = _dispatch_order(tasks, model, summary_cache)
            if first_wave:
                # Snapshot what the scheduler believed *before* this round's
                # measurements update the model: the misestimate audit below
                # must judge the decisions as made, not as hindsight.
                fence_threshold = model.fence_seconds * config.cost_margin
                dispatch_estimates = [
                    model.estimate_seconds(
                        task.key[1], summary_cache.size_hint(task.key[1]), task.features
                    )
                    for task in ordered
                ]
            payloads = []
            for task in ordered:
                payload = dict(task.payload)
                payload["source"] = source
                payload["procedure"] = procedure_name
                payload["roots_only"] = roots_only
                payload["solver"] = solver_spec
                if obs_context is not None:
                    payload["obs"] = obs_context
                payloads.append(payload)

            if recorder is not None:
                recorder.begin_category("fence")
            try:
                with obs.timed(
                    "parallel.pool", "fence", wave=report.waves - 1, shards=len(ordered)
                ) as pool_timer:
                    results = _dispatch_tasks(payloads, workers, config, report)
            finally:
                if recorder is not None:
                    recorder.end_category()
            wave_pool_seconds = pool_timer.seconds
            report.pool_seconds += wave_pool_seconds

            if recorder is not None:
                recorder.begin_category("merge")
            try:
                with obs.timed("parallel.merge", "merge", wave=report.waves - 1) as merge_timer:
                    wave_worker_elapsed = merge_shard_results(
                        summary_cache,
                        [task.key[1] for task in ordered],
                        results,
                        report,
                        cost_model=None if plan_active else model,
                        features=[task.features for task in ordered],
                    )
            finally:
                if recorder is not None:
                    recorder.end_category()
            wave_merge_seconds = merge_timer.seconds
            report.merge_seconds += wave_merge_seconds

            if first_wave:
                # Audit the first wave's ship decisions against measured
                # reality: a blind ship (cold depth prior, no estimate from
                # any source) or an estimate on the wrong side of the fence
                # threshold is a misestimate.  Only the first wave counts --
                # later waves schedule off this run's own measurements, so
                # they say nothing about how warm the process *started*.
                for estimate, result in zip(dispatch_estimates, results):
                    if result is None:
                        continue
                    if estimate is None:
                        report.first_wave_misestimates += 1
                    elif (estimate >= fence_threshold) != (
                        result["elapsed"] >= fence_threshold
                    ):
                        report.first_wave_misestimates += 1

            if recorder is not None:
                # Adopt the workers' telemetry under this wave's pool span:
                # rebased, clamped, merged into one coherent trace.  Shard
                # wall clocks feed the histogram the cost model's feature
                # widening reads.
                for result in results:
                    if result is None:
                        continue
                    recorder.metrics.observe("shard.seconds", result["elapsed"])
                    worker_payload = result.get("obs")
                    if worker_payload and pool_timer.span is not None:
                        recorder.adopt_worker(worker_payload, anchor=pool_timer.span)

            if not plan_active:
                model.observe_round(
                    shards=len(ordered),
                    pool_seconds=wave_pool_seconds,
                    merge_seconds=wave_merge_seconds,
                    worker_elapsed=wave_worker_elapsed,
                    workers=workers,
                    failed=sum(1 for result in results if result is None),
                )
            # A shard that produced nothing is not retried by later waves --
            # its subtree is explored natively there (and by the caller), so a
            # crash-looping schedule cannot stall the chain.
            skip_keys.update(
                task.key for task, result in zip(ordered, results) if result is None
            )
            if not chained and not want_final_result:
                # Stateless tokens are exact without chaining and the caller
                # will run natively over the merged cache: one round is enough.
                break

    if recorder is not None:
        recorder.metrics.register("parallel", report)
    if report.failure_reasons:
        # Partial salvage: whatever the surviving shards produced is in the
        # cache; failed shards cost only their own subtrees (explored
        # natively by the caller's replay run).
        report.salvaged_entries = report.merged_entries
        warnings.warn(
            f"parallel prewarm degraded: {report.failed_shards} of "
            f"{report.shards} shards failed permanently "
            f"({report.retried_shards} retried, "
            f"{report.quarantined_shards} quarantined); first failure: "
            f"{report.failure_reasons[0]}",
            RuntimeWarning,
            stacklevel=2,
        )
    return report


def _dispatch_order(
    tasks: List[FrontierTask],
    model: SchedulerCostModel,
    summary_cache: SummaryCache,
) -> List[FrontierTask]:
    """Deterministic dispatch order for one pool round.

    Largest estimate first (longest-job-first load balance; cold digests
    count as unbounded and lead), ties broken by region digest and then by
    capture order -- a *stable*, content-derived key, so shard indices,
    report counters and merge order are reproducible run-to-run even when
    every estimate is equal.
    """

    def order_key(position: int):
        task = tasks[position]
        estimate = model.estimate_seconds(
            task.key[1], summary_cache.size_hint(task.key[1]), task.features
        )
        if estimate is None:
            estimate = float("inf")
        return (-estimate, task.key[1], position)

    return [tasks[position] for position in sorted(range(len(tasks)), key=order_key)]


#: Cap on recorded failure-reason strings per report (a crash-looping
#: schedule should not grow an unbounded list).
_MAX_FAILURE_REASONS = 20


def _record_failure(report: ParallelReport, index: int, attempt: int, error: BaseException) -> None:
    if len(report.failure_reasons) < _MAX_FAILURE_REASONS:
        report.failure_reasons.append(
            f"shard {index} attempt {attempt}: {type(error).__name__}: {error}"
        )
    # Failure attribution happens parent-side: a crashed worker's own spans
    # died with its process, so the trace records the parent's view of every
    # failed attempt as an instant event.
    obs.event(
        "shard.failure",
        category="shard",
        shard=index,
        attempt=attempt,
        error=type(error).__name__,
        message=str(error)[:200],
    )


#: Exception classes that, when raised *by the shard code itself* (crossing
#: the fence through ``handle.get`` or raised by an inline quarantine run),
#: indicate a deterministic scheduler/payload bug rather than a worker
#: fault: retrying or quarantining them would re-execute the same broken
#: code and silently degrade a buggy scheduler to "slow but passing".
_SCHEDULER_BUG_TYPES = (KeyError, TypeError, AttributeError, IndexError, ValueError)


def _is_scheduler_bug(error: BaseException) -> bool:
    """True for deterministic programming errors raised by shard execution.

    Injected faults (:class:`~repro.faults.FaultError`) and serialization
    corruption (:class:`~repro.parallel.serialize.SerializationError`, e.g.
    a fault-mangled envelope) are *worker* faults -- nondeterministic or
    environment-caused -- and keep the retry/quarantine path.
    """
    if isinstance(error, (faults.FaultError, SerializationError)):
        return False
    return isinstance(error, _SCHEDULER_BUG_TYPES)


def _fault_ident(index: int, payload: Dict) -> str:
    """A chaos-roll ident for one task: index plus a content digest.

    The digest (program text + shard root) varies across versions of a
    history sweep, so a seeded fault schedule hits *different* shard
    indices per run instead of deterministically killing the same index
    everywhere -- while staying a pure function of the task's content
    (reproducible across processes and test orderings).
    """
    material = f"{payload.get('source', '')}|{payload.get('root', '')}"
    digest = hashlib.blake2b(material.encode("utf-8"), digest_size=4).hexdigest()
    return f"task{index}|{digest}"


def _dispatch_tasks(
    payloads: List[Dict],
    workers: int,
    config: ShardConfig,
    report: ParallelReport,
) -> List[Optional[Dict]]:
    """Run every payload through the pool with per-task isolation.

    Each task carries its own deadline; a crashed or timed-out task is
    retried (with backoff) up to ``config.max_task_retries`` times, then
    quarantined: executed inline in the parent when
    ``config.quarantine_inline`` is set, otherwise dropped with its subtree
    left to native exploration.  The returned list is index-aligned with
    ``payloads``; ``None`` marks a shard that produced no result.  Failures
    only ever shrink the result list -- surviving shards always merge.

    Failure triage: every failed attempt records its exception class in
    ``report.failure_reasons``, but only genuine *worker faults* (injected
    faults, timeouts, corruption, pool infrastructure loss) degrade to
    retry/quarantine.  A deterministic programming error raised by the
    shard code itself (:data:`_SCHEDULER_BUG_TYPES`) is re-raised: a buggy
    scheduler must fail loudly, not hide behind salvage.
    """
    plan = faults.active_plan()
    fault_payload = plan.worker_payload() if plan is not None else None

    results: List[Optional[Dict]] = [None] * len(payloads)
    attempts = [0] * len(payloads)
    retried = set()
    pending = list(range(len(payloads)))
    quarantine: List[int] = []
    pool_broken = False
    saw_timeout = False
    phase_deadline = time.monotonic() + config.pool_timeout_seconds

    while pending and not pool_broken:
        try:
            pool = _get_pool(workers)
        except Exception as error:
            # Pool creation failed: parent-side infrastructure (fd/process
            # limits), not a property of any payload -- degrade, never raise.
            _record_failure(report, pending[0], attempts[pending[0]], error)
            pool_broken = True
            break
        handles: List[Tuple[int, object]] = []
        for index in pending:
            payload = dict(payloads[index])
            if fault_payload is not None:
                payload["faults"] = fault_payload
                payload["fault_ident"] = _fault_ident(index, payload)
                # Folded into the worker's roll scope: a retried attempt
                # draws a fresh fault schedule instead of deterministically
                # re-failing forever.
                payload["fault_attempt"] = attempts[index]
            try:
                handles.append((index, pool.apply_async(run_shard, (payload,))))
            except Exception as error:
                # The pool object itself is unusable (lost its workers,
                # already terminated, ...).  Infrastructure again -- the
                # payload never ran, so nothing deterministic is known
                # about it.  Everything not yet submitted goes straight to
                # quarantine.
                _record_failure(report, index, attempts[index], error)
                pool_broken = True
                break
        submitted = {index for index, _ in handles}
        retry_round: List[int] = []
        for index in pending:
            if index not in submitted:
                quarantine.append(index)
        for index, handle in handles:
            budget = min(
                config.task_timeout_seconds, phase_deadline - time.monotonic()
            )
            try:
                results[index] = decode_shard_result(handle.get(max(0.0, budget)))
            except multiprocessing.TimeoutError as error:
                saw_timeout = True
                _record_failure(report, index, attempts[index], error)
                attempts[index] += 1
                if attempts[index] <= config.max_task_retries:
                    retry_round.append(index)
                else:
                    quarantine.append(index)
            except Exception as error:
                # The worker raised.  An injected crash, a lost process
                # turned into a pool error, or a corrupt envelope gets the
                # same retry policy; a deterministic programming error in
                # the shard code is a scheduler bug and is re-raised.
                _record_failure(report, index, attempts[index], error)
                if _is_scheduler_bug(error):
                    raise
                attempts[index] += 1
                if attempts[index] <= config.max_task_retries:
                    retry_round.append(index)
                else:
                    quarantine.append(index)
        retried.update(retry_round)
        pending = retry_round
        if pending and config.retry_backoff_seconds > 0:
            time.sleep(config.retry_backoff_seconds)

    if pool_broken:
        # Any task still in flight or unsubmitted when the pool broke.
        quarantine.extend(index for index in pending if results[index] is None)
    if pool_broken or saw_timeout:
        # A pool that lost workers or still holds a wedged task cannot be
        # trusted by later runs.
        _discard_pool(workers)

    report.retried_shards += len(retried)
    quarantine = sorted(set(quarantine))
    report.quarantined_shards += len(quarantine)
    for index in quarantine:
        obs.event("shard.quarantine", category="shard", shard=index, attempts=attempts[index])
        if config.quarantine_inline:
            payload = dict(payloads[index])
            # Inline execution runs in the parent: worker-fault sites are
            # disarmed (no shipped plan; the parent plan is not in_worker).
            payload.pop("faults", None)
            try:
                results[index] = decode_shard_result(run_shard(payload))
                continue
            except Exception as error:
                _record_failure(report, index, attempts[index], error)
                if _is_scheduler_bug(error):
                    raise
        # Subtree left to the caller's native exploration.
    report.failed_shards += sum(1 for result in results if result is None)
    return results


def prewarm_full(
    program: Program,
    procedure_name: str,
    cfg: ControlFlowGraph,
    summary_cache: SummaryCache,
    workers: int,
    depth_bound: Optional[int] = None,
    config: Optional[ShardConfig] = None,
    region_index: Optional[RegionHashIndex] = None,
    solver: Optional[ConstraintSolver] = None,
    roots_only: bool = False,
    cost_model: Optional[SchedulerCostModel] = None,
    want_final_result: bool = True,
) -> ParallelReport:
    """Prewarm for *full* symbolic execution (stateless strategy)."""
    return prewarm_parallel(
        program,
        procedure_name,
        cfg,
        strategy_factory=ExploreEverything,
        payload_factory=lambda strategy: (lambda state: {"kind": "everything"}),
        summary_cache=summary_cache,
        workers=workers,
        depth_bound=depth_bound,
        config=config,
        region_index=region_index,
        solver=solver,
        roots_only=roots_only,
        cost_model=cost_model,
        want_final_result=want_final_result,
        run_key=f"full:{procedure_name}",
    )


def prewarm_directed(
    program: Program,
    procedure_name: str,
    cfg: ControlFlowGraph,
    strategy_factory,
    summary_cache: SummaryCache,
    workers: int,
    depth_bound: Optional[int] = None,
    config: Optional[ShardConfig] = None,
    region_index: Optional[RegionHashIndex] = None,
    solver: Optional[ConstraintSolver] = None,
    roots_only: bool = False,
    cost_model: Optional[SchedulerCostModel] = None,
) -> ParallelReport:
    """Prewarm for DiSE's directed strategy.

    ``strategy_factory()`` must build a fresh
    :class:`~repro.core.directed.DirectedExplorationStrategy` configured
    exactly like the one the caller's serial run will use.  Each chained
    collection pass consumes its own instance (sharing one object would
    leak one pass's set mutations into the next, exactly the drift the
    chaining exists to eliminate).

    DiSE always runs its own serial strategy pass afterwards (its metrics
    read that strategy's sets), so ``want_final_result`` is pinned False:
    a run the scheduler's gate keeps inline costs nothing here.
    """
    return prewarm_parallel(
        program,
        procedure_name,
        cfg,
        strategy_factory=strategy_factory,
        payload_factory=lambda strategy: (
            lambda state: _directed_strategy_payload(strategy, state)
        ),
        summary_cache=summary_cache,
        workers=workers,
        depth_bound=depth_bound,
        config=config,
        region_index=region_index,
        solver=solver,
        roots_only=roots_only,
        cost_model=cost_model,
        want_final_result=False,
        run_key=f"directed:{procedure_name}",
    )
