"""Sharded frontier exploration across worker processes.

The engine's DFS subtrees below independent branch frames are solver-
independent (every per-path structure went context-local in PR 1-3), which
makes divide-and-conquer parallelization possible.  The scheme here keeps
the *output* provably identical to a serial run by reusing the summary
cache's exact-replay machinery as the merge point:

1. **Collect** (serial, in-process): a :class:`FrontierCollector` -- the
   ordinary engine with one twist -- explores the shallow prefix of the
   tree.  When it reaches a cache-eligible branch frame at or below the
   configured split depth whose summary-cache key is computable (strategy
   token present, environment fingerprint prefix-independent), it *defers*
   the whole subtree as a :class:`FrontierTask` instead of exploring it.
   Everything it does explore is recorded into the shared summary cache as
   usual (recordings that lost a subtree to a deferral are aborted, never
   stored), so no phase-1 work is wasted.
2. **Execute** (parallel): the tasks ship to a ``multiprocessing`` pool.
   Task payloads cross the process fence structurally (term *trees*, see
   :mod:`repro.parallel.serialize`) because intern ids are process- and
   lifetime-local.  Each worker re-parses the program (MiniLang parses are
   deterministic, so node ids line up), re-interns the environment, and
   runs the engine from the shipped frame with its **own**
   :class:`~repro.solver.context.SolverContext`, lookahead walk memo and
   :class:`~repro.symexec.summary_cache.SummaryCache`.  No state is shared
   between workers.
3. **Merge** (serial): each worker returns its summary cache's entries,
   content-keyed exactly like the parent's.  They are decoded, re-interned
   and adopted into the shared cache (:func:`repro.parallel.merge.merge_encoded_entries`).
4. **Replay** (serial): the caller then runs the *normal* serial engine
   over the shared cache.  Wherever it arrives at a deferred frame with
   the same key, it replays the worker's summary -- exactness of that
   replay is the summary cache's published contract, differentially tested
   since PR 2.  Wherever the key does not match (a stateful strategy whose
   global sets drifted from the collector's approximation), it simply
   explores natively: speculation misses cost speed, never correctness.

Determinism: the final summary is produced by the serial replay run in
DFS order, so the result is independent of worker scheduling and shard
order by construction -- parallel and serial runs emit the identical
distinct path conditions.
"""

from __future__ import annotations

import atexit
import hashlib
import multiprocessing
import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import faults
from repro.cfg.builder import build_cfg
from repro.cfg.graph import ControlFlowGraph
from repro.cfg.ir import NodeKind
from repro.cfg.region_hash import RegionHashIndex
from repro.core.affected import AffectedSets
from repro.core.directed import DirectedExplorationStrategy
from repro.lang.ast_nodes import Program
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program
from repro.parallel.serialize import (
    decode_environment,
    decode_frames,
    encode_cache_entries,
    encode_environment,
    encode_frames,
)
from repro.solver.core import ConstraintSolver
from repro.symexec.engine import SymbolicExecutor
from repro.symexec.state import SymbolicState
from repro.symexec.strategy import ExplorationStrategy, ExploreEverything
from repro.symexec.summary_cache import SummaryCache


@dataclass(frozen=True)
class ShardConfig:
    """Tuning knobs for the frontier sharding scheme.

    Attributes:
        split_depth: number of branch decisions after which an eligible
            frame is deferred to a worker instead of explored inline.
            Shallower splits mean fewer, larger shards; deeper splits mean
            more, smaller shards with better load balance but more payload
            traffic.
        max_shards: hard cap on deferred subtrees per run; frames beyond
            the cap are explored natively by the collector (and still end
            up in the cache via its ordinary recordings).
        min_shards: when fewer tasks than this are collected, the pool is
            skipped entirely and the caller's serial run explores them
            natively -- process overhead would dominate the savings.
        pool_timeout_seconds: upper bound on the whole pool phase.  A
            worker killed mid-shard (OOM, CI memory cap) would otherwise
            block the dispatch loop forever; on expiry the remaining tasks
            are quarantined and their subtrees left to native exploration.
        task_timeout_seconds: per-task deadline for one shard attempt.  A
            single wedged shard costs one timeout, not the phase budget.
        max_task_retries: how many times a crashed or timed-out shard is
            re-dispatched to the pool before it is quarantined.
        retry_backoff_seconds: pause between retry rounds (lets a respawned
            worker settle; keeps a crash-looping schedule from spinning).
        quarantine_inline: when True, a quarantined task is executed inline
            in the parent as a last resort; when False (or when the inline
            run also fails) its subtree is simply left to the caller's
            native exploration -- a pure speed loss, never a wrong answer.
    """

    split_depth: int = 2
    max_shards: int = 256
    min_shards: int = 2
    pool_timeout_seconds: float = 600.0
    task_timeout_seconds: float = 60.0
    max_task_retries: int = 2
    retry_backoff_seconds: float = 0.05
    quarantine_inline: bool = True
    #: Adaptive deferral (ROADMAP "Shard scheduling"): when the summary
    #: cache has already seen a subtree with this region digest, its
    #: recorded path count estimates the subtree's solver work.  Subtrees
    #: estimated below ``min_task_paths`` are explored inline -- shipping
    #: them would cost more than solving them -- which is what lifts the
    #: process-fence overhead on artifacts with cheap subtrees (WBS/OAE).
    #: Unknown digests fall back to the fixed ``split_depth`` behaviour.
    adaptive: bool = True
    min_task_paths: int = 6


@dataclass
class FrontierTask:
    """One deferred subtree: its cache key plus the worker payload.

    Deliberately *not* the captured :class:`SymbolicState` itself -- tasks
    outlive the collection pass (they are held through the pool run), and
    the payload's encoded term trees are all the worker needs; the merged
    entries pin their own decoded terms.
    """

    key: tuple
    payload: Dict


@dataclass
class ParallelReport:
    """What the prewarm pass did (surfaced through DiSE metrics and benches)."""

    workers: int = 0
    frontier_frames: int = 0
    shards: int = 0
    #: Eligible frames the adaptive policy kept inline because their
    #: estimated subtree was cheaper than the shipping cost.
    adaptive_inline: int = 0
    merged_entries: int = 0
    worker_paths: int = 0
    worker_states: int = 0
    #: Shards that produced no result at all (pool attempts exhausted and
    #: the quarantine pass failed or was disabled); their subtrees are left
    #: to the caller's native exploration.
    failed_shards: int = 0
    #: Shards re-dispatched to the pool at least once after a crash/timeout.
    retried_shards: int = 0
    #: Shards that exhausted their pool retries and went to the quarantine
    #: pass (inline execution or native fallback).
    quarantined_shards: int = 0
    #: Entries merged from *surviving* shards of a run that had failures --
    #: what partial salvage rescued (0 on a clean run, where it would just
    #: duplicate ``merged_entries``).
    salvaged_entries: int = 0
    #: Human-readable "shard N attempt A: ExcType: message" strings (capped).
    failure_reasons: List[str] = field(default_factory=list)
    collect_seconds: float = 0.0
    pool_seconds: float = 0.0
    merge_seconds: float = 0.0
    worker_elapsed_total: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "workers": self.workers,
            "frontier_frames": self.frontier_frames,
            "shards": self.shards,
            "adaptive_inline": self.adaptive_inline,
            "merged_entries": self.merged_entries,
            "worker_paths": self.worker_paths,
            "worker_states": self.worker_states,
            "failed_shards": self.failed_shards,
            "retried_shards": self.retried_shards,
            "quarantined_shards": self.quarantined_shards,
            "salvaged_entries": self.salvaged_entries,
            "failure_reasons": list(self.failure_reasons),
            "collect_seconds": round(self.collect_seconds, 6),
            "pool_seconds": round(self.pool_seconds, 6),
            "merge_seconds": round(self.merge_seconds, 6),
            "worker_elapsed_total": round(self.worker_elapsed_total, 6),
        }


# -- phase 1: frontier collection ---------------------------------------------


class FrontierCollector(SymbolicExecutor):
    """The engine, except that deep eligible subtrees are deferred, not explored.

    The collector runs with the *shared* summary cache: shallow subtrees it
    does complete are recorded for the replay run, cache hits short-circuit
    exactly as in a serial run, and only recordings truncated by a deferral
    are aborted.  Strategy note: ``on_state`` fires once for a deferred
    frame here and once again in the replay run, mirroring how the replay
    run itself revisits the frame; the built-in strategies' set updates are
    idempotent, which is the documented requirement for custom ones.
    """

    def __init__(self, *args, config: ShardConfig, strategy_payload, **kwargs):
        super().__init__(*args, **kwargs)
        if self.summary_cache is None:
            raise ValueError("FrontierCollector requires a summary cache")
        self.config = config
        #: Callback producing the strategy part of a worker payload at
        #: capture time (strategy state is mutable; it must be snapshotted
        #: the moment the frame is deferred).
        self.strategy_payload = strategy_payload
        self.tasks: List[FrontierTask] = []
        self._task_keys = set()
        self.frontier_frames = 0
        self.adaptive_inline = 0

    def _visit(self, state, summary, tree_node, edge_label=""):
        if self._defer(state, edge_label):
            return [], None
        return super()._visit(state, summary, tree_node, edge_label)

    def _defer(self, state: SymbolicState, edge_label: str) -> bool:
        """Decide whether to defer ``state``'s subtree; capture it if so."""
        node = state.node
        if state.depth < self.config.split_depth:
            return False
        if node.kind in (NodeKind.END, NodeKind.ERROR):
            return False
        if self.depth_bound is not None and state.depth > self.depth_bound:
            return False
        if not self._cache_root_eligible(node, edge_label):
            return False
        # The strategy token must reflect the sets *after* this node's
        # on_state update, exactly as it will at replay-probe time.  When
        # the frame is not deferred after all, the ordinary visit applies
        # on_state again -- strategy set updates are idempotent (see the
        # class docstring), so the early call is safe.
        self.strategy.on_state(state)
        signature = self.region_index.signature(node)
        if self.config.adaptive:
            # A subtree the cache has seen before (any key with this region
            # digest) comes with a path-count estimate; ship it only when
            # the estimated solver work beats the process-fence cost.
            estimate = self.summary_cache.size_hint(signature.digest)
            if estimate is not None and estimate < self.config.min_task_paths:
                self.adaptive_inline += 1
                return False
        token = self.strategy.replay_token(state, signature)
        if token is None:
            return False
        fingerprint = self._fingerprint(
            state.env_map(), signature, state.path_condition.constraints, state.frames
        )
        if fingerprint is None:
            return False
        budget = None if self.depth_bound is None else self.depth_bound - state.depth
        key = ("suffix", signature.digest, fingerprint, token, budget)
        if self.summary_cache.contains(key):
            # Already summarised (earlier version, earlier shard, earlier
            # sibling): let the ordinary visit replay it.
            return False
        duplicate = key in self._task_keys
        if not duplicate and len(self.tasks) >= self.config.max_shards:
            return False
        # Committed to deferring.  No boundary-crossing capture is needed:
        # every open segment recording is aborted below (its segment lost a
        # subtree), so a capture could never be stored.
        self.frontier_frames += 1
        if duplicate:
            # A duplicate frame: one worker execution serves both replays.
            self._abort_open_recordings()
            return True
        self._task_keys.add(key)
        self.tasks.append(
            FrontierTask(
                key=key,
                payload={
                    "root": node.node_id,
                    "edge": edge_label,
                    "environment": encode_environment(state.environment),
                    "frames": encode_frames(state.frames),
                    "depth_bound": budget,
                    "strategy": self.strategy_payload(state),
                },
            )
        )
        self._abort_open_recordings()
        return True


# -- worker-side strategy reconstruction --------------------------------------


class _ShardDirectedStrategy(DirectedExplorationStrategy):
    """A directed strategy resumed mid-run inside a worker process.

    The Fig. 6 global sets are installed from the shipped snapshot instead
    of the run-start reset; whether the *prefix* (which the worker never
    sees) already covered an affected node arrives as a precomputed bit and
    is folded into ``should_force_completion`` and the replay token's
    covered-bit, so nested cache entries recorded by the worker carry the
    same tokens a serial run would compute.
    """

    def __init__(self, *args, initial_sets: Dict[str, List[int]], prefix_covered: bool, **kwargs):
        super().__init__(*args, **kwargs)
        self._initial_sets = initial_sets
        self.prefix_covered = prefix_covered

    def on_run_start(self, initial_state: SymbolicState) -> None:
        super().on_run_start(initial_state)
        self.unex_cond = set(self._initial_sets["unex_cond"])
        self.unex_write = set(self._initial_sets["unex_write"])
        self.ex_cond = set(self._initial_sets["ex_cond"])
        self.ex_write = set(self._initial_sets["ex_write"])

    def should_force_completion(self, state: SymbolicState) -> bool:
        if self.prefix_covered and self.enable_pruning and self.complete_covered_paths:
            return True
        return super().should_force_completion(state)

    def replay_token(self, state, region):
        token = super().replay_token(state, region)
        if token is None or not self.complete_covered_paths:
            return token
        return token[:-1] + (bool(token[-1]) or self.prefix_covered,)


def _directed_strategy_payload(strategy: DirectedExplorationStrategy, state: SymbolicState) -> Dict:
    """Snapshot a directed strategy for one deferred frame's worker."""
    affected_ids = strategy.affected.acn | strategy.affected.awn
    return {
        "kind": "directed",
        "acn": sorted(strategy.affected.acn),
        "awn": sorted(strategy.affected.awn),
        "sets": {
            "unex_cond": sorted(strategy.unex_cond),
            "unex_write": sorted(strategy.unex_write),
            "ex_cond": sorted(strategy.ex_cond),
            "ex_write": sorted(strategy.ex_write),
        },
        "enable_reset": strategy.enable_reset,
        "enable_pruning": strategy.enable_pruning,
        "complete_covered_paths": strategy.complete_covered_paths,
        "prefix_covered": any(node_id in affected_ids for node_id in state.trace),
        "lookahead": strategy.lookahead is not None,
        "lookahead_memoize": strategy.lookahead.memoize if strategy.lookahead is not None else True,
    }


def _build_worker_strategy(spec: Dict, cfg: ControlFlowGraph, solver: ConstraintSolver) -> ExplorationStrategy:
    kind = spec.get("kind")
    if kind == "everything":
        return ExploreEverything()
    if kind == "directed":
        affected = AffectedSets(cfg=cfg, acn=set(spec["acn"]), awn=set(spec["awn"]))
        return _ShardDirectedStrategy(
            cfg,
            affected,
            enable_reset=spec["enable_reset"],
            enable_pruning=spec["enable_pruning"],
            complete_covered_paths=spec["complete_covered_paths"],
            solver=solver,
            feasibility_lookahead=spec["lookahead"],
            lookahead_memoize=spec["lookahead_memoize"],
            initial_sets=spec["sets"],
            prefix_covered=spec["prefix_covered"],
        )
    raise ValueError(f"Unknown worker strategy kind {kind!r}")


# -- phase 2: the worker -------------------------------------------------------


#: Worker-local parse/CFG memo: a pool worker serves many shards of the
#: same program text (and of the same history's version texts), so each
#: text is parsed and CFG-built once per worker process.
_WORKER_PROGRAMS: Dict[Tuple[str, str], Tuple[Program, ControlFlowGraph]] = {}


def _worker_program(source: str, procedure_name: str) -> Tuple[Program, ControlFlowGraph]:
    key = (source, procedure_name)
    cached = _WORKER_PROGRAMS.get(key)
    if cached is None:
        program = parse_program(source)
        cached = (program, build_cfg(program, procedure_name))
        if len(_WORKER_PROGRAMS) >= 256:
            _WORKER_PROGRAMS.clear()
        _WORKER_PROGRAMS[key] = cached
    return cached


def run_shard(payload: Dict) -> Dict:
    """Execute one deferred subtree in this (worker) process.

    Top-level so it is picklable for ``multiprocessing``; everything it
    needs arrives in the payload and everything it produces leaves as
    JSON-compatible data -- no interned object ever crosses the fence.
    """
    started = time.perf_counter()
    plan = None
    fault_spec = payload.get("faults")
    if fault_spec:
        # Chaos schedules ship inside the payload (workers are forked
        # lazily and reused across runs; environment-based arming would be
        # both racy and sticky).  The install is cleared before returning
        # so a reused worker never fires a stale schedule on a clean task.
        plan = faults.FaultPlan.from_payload(fault_spec)
        plan.in_worker = True
        faults.install(plan)
    try:
        return _run_shard_inner(payload, plan, started)
    finally:
        if plan is not None:
            faults.clear()


def _run_shard_inner(payload: Dict, plan, started: float) -> Dict:
    if plan is not None:
        ident = f"{payload.get('fault_ident', 'task')}|a{payload.get('fault_attempt', 0)}"
        plan.maybe_worker_fault(ident)
    procedure_name = payload["procedure"]
    program, cfg = _worker_program(payload["source"], procedure_name)
    root = cfg.node(payload["root"])
    environment = decode_environment(payload["environment"])
    entry_state = SymbolicState.make(
        node=root,
        environment=environment,
        trace=(root.node_id,),
        frames=decode_frames(payload.get("frames", [])),
    )
    # The worker's solver must decide exactly what the parent's would: a
    # different integer bound could flip a subtree branch verdict and the
    # replay run would trust the divergent summary.  The spec is required
    # -- a payload without one fails loudly instead of silently deciding
    # under default bounds.
    solver_spec = payload["solver"]
    solver = ConstraintSolver(
        bound=solver_spec["bound"],
        max_branch_steps=solver_spec["max_branch_steps"],
    )
    strategy = _build_worker_strategy(payload["strategy"], cfg, solver)
    cache = SummaryCache()
    executor = SymbolicExecutor(
        program,
        procedure_name=procedure_name,
        cfg=cfg,
        solver=solver,
        depth_bound=payload["depth_bound"],
        strategy=strategy,
        summary_cache=cache,
        entry_state=entry_state,
        entry_edge_label=payload.get("edge", ""),
    )
    result = executor.run()
    entries = cache.iter_entries()
    if payload.get("roots_only"):
        # The caller's cache is ephemeral (single parallel run): only the
        # shard root's summaries can be replayed there, so shipping the
        # nested entries would be pure encode/decode overhead.  A shared
        # history cache gets everything -- nested regions seed later
        # versions.
        root_digest = executor.region_index.signature(root).digest
        entries = (
            (key, summary, pins)
            for key, summary, pins in entries
            if key[1] == root_digest
        )
    return {
        "entries": encode_cache_entries(entries),
        "paths": len(result.summary),
        "states": result.statistics.states_explored,
        "elapsed": time.perf_counter() - started,
    }


# -- pool management -----------------------------------------------------------

_POOLS: Dict[int, multiprocessing.pool.Pool] = {}


def _get_pool(workers: int) -> multiprocessing.pool.Pool:
    """A lazily created, process-wide pool per worker count.

    Workers are stateless (each task ships everything it needs), so pools
    are safely reused across runs -- repeated ``DiSE(workers=N)`` calls in
    a history sweep pay the fork cost once.
    """
    pool = _POOLS.get(workers)
    if pool is None:
        pool = multiprocessing.get_context().Pool(processes=workers)
        _POOLS[workers] = pool
    return pool


def _discard_pool(workers: int) -> None:
    """Terminate and forget one cached pool (it misbehaved; never reuse it)."""
    pool = _POOLS.pop(workers, None)
    if pool is not None:
        pool.terminate()
        pool.join()


def warm_pool(workers: int) -> None:
    """Pre-fork the worker pool so a later run's timing excludes the fork cost.

    Benchmarks call this before their timed region; ordinary clients never
    need to (the first parallel run forks lazily).
    """
    _get_pool(workers)


def shutdown_pools() -> None:
    """Terminate every cached worker pool (idempotent; also runs at exit)."""
    for pool in _POOLS.values():
        pool.terminate()
        pool.join()
    _POOLS.clear()


atexit.register(shutdown_pools)


# -- the scheduler -------------------------------------------------------------


def prewarm_parallel(
    program: Program,
    procedure_name: str,
    cfg: ControlFlowGraph,
    collector_strategy: ExplorationStrategy,
    strategy_payload,
    summary_cache: SummaryCache,
    workers: int,
    depth_bound: Optional[int] = None,
    config: Optional[ShardConfig] = None,
    region_index: Optional[RegionHashIndex] = None,
    solver: Optional[ConstraintSolver] = None,
    source: Optional[str] = None,
    roots_only: bool = False,
) -> ParallelReport:
    """Run the collect/execute/merge phases, leaving ``summary_cache`` warm.

    ``roots_only`` asks workers to ship only their shard-root summaries;
    callers set it when the cache is ephemeral (single run) and nested
    entries could never be replayed anyway.

    The caller then runs its ordinary serial engine against the same cache;
    see the module docstring for why that guarantees serial-identical
    output.  ``collector_strategy`` must be a fresh instance configured
    like the caller's real strategy (it is consumed by the collection
    pass); ``strategy_payload(state)`` snapshots it into a worker payload.
    """
    from repro.parallel.merge import merge_encoded_entries

    config = config or ShardConfig()
    report = ParallelReport(workers=workers)
    source = source if source is not None else pretty_program(program)

    started = time.perf_counter()
    collector = FrontierCollector(
        program,
        procedure_name=procedure_name,
        cfg=cfg,
        solver=solver,
        depth_bound=depth_bound,
        strategy=collector_strategy,
        summary_cache=summary_cache,
        region_index=region_index,
        config=config,
        strategy_payload=strategy_payload,
    )
    collector.run()
    report.collect_seconds = time.perf_counter() - started
    report.frontier_frames = collector.frontier_frames
    report.adaptive_inline = collector.adaptive_inline
    tasks = collector.tasks
    report.shards = len(tasks)
    if len(tasks) < config.min_shards:
        report.shards = 0
        return report

    # Workers must mirror the caller's solver configuration (the collector
    # shares the caller's solver, so read it from there when none was given).
    run_solver = solver if solver is not None else collector.solver
    solver_spec = {
        "bound": run_solver.bound,
        "max_branch_steps": run_solver.max_branch_steps,
    }
    payloads = []
    for task in tasks:
        payload = dict(task.payload)
        payload["source"] = source
        payload["procedure"] = procedure_name
        payload["roots_only"] = roots_only
        payload["solver"] = solver_spec
        payloads.append(payload)

    started = time.perf_counter()
    results = _dispatch_tasks(payloads, workers, config, report)
    report.pool_seconds = time.perf_counter() - started

    started = time.perf_counter()
    for result in results:
        if result is None:
            continue
        report.worker_paths += result["paths"]
        report.worker_states += result["states"]
        report.worker_elapsed_total += result["elapsed"]
        report.merged_entries += merge_encoded_entries(summary_cache, result["entries"])
    report.merge_seconds = time.perf_counter() - started
    if report.failure_reasons:
        # Partial salvage: whatever the surviving shards produced is in the
        # cache; failed shards cost only their own subtrees (explored
        # natively by the caller's replay run).
        report.salvaged_entries = report.merged_entries
        warnings.warn(
            f"parallel prewarm degraded: {report.failed_shards} of "
            f"{report.shards} shards failed permanently "
            f"({report.retried_shards} retried, "
            f"{report.quarantined_shards} quarantined); first failure: "
            f"{report.failure_reasons[0]}",
            RuntimeWarning,
            stacklevel=2,
        )
    return report


#: Cap on recorded failure-reason strings per report (a crash-looping
#: schedule should not grow an unbounded list).
_MAX_FAILURE_REASONS = 20


def _record_failure(report: ParallelReport, index: int, attempt: int, error: BaseException) -> None:
    if len(report.failure_reasons) < _MAX_FAILURE_REASONS:
        report.failure_reasons.append(
            f"shard {index} attempt {attempt}: {type(error).__name__}: {error}"
        )


def _fault_ident(index: int, payload: Dict) -> str:
    """A chaos-roll ident for one task: index plus a content digest.

    The digest (program text + shard root) varies across versions of a
    history sweep, so a seeded fault schedule hits *different* shard
    indices per run instead of deterministically killing the same index
    everywhere -- while staying a pure function of the task's content
    (reproducible across processes and test orderings).
    """
    material = f"{payload.get('source', '')}|{payload.get('root', '')}"
    digest = hashlib.blake2b(material.encode("utf-8"), digest_size=4).hexdigest()
    return f"task{index}|{digest}"


def _dispatch_tasks(
    payloads: List[Dict],
    workers: int,
    config: ShardConfig,
    report: ParallelReport,
) -> List[Optional[Dict]]:
    """Run every payload through the pool with per-task isolation.

    Each task carries its own deadline; a crashed or timed-out task is
    retried (with backoff) up to ``config.max_task_retries`` times, then
    quarantined: executed inline in the parent when
    ``config.quarantine_inline`` is set, otherwise dropped with its subtree
    left to native exploration.  The returned list is index-aligned with
    ``payloads``; ``None`` marks a shard that produced no result.  Failures
    only ever shrink the result list -- surviving shards always merge.
    """
    plan = faults.active_plan()
    fault_payload = plan.worker_payload() if plan is not None else None

    results: List[Optional[Dict]] = [None] * len(payloads)
    attempts = [0] * len(payloads)
    retried = set()
    pending = list(range(len(payloads)))
    quarantine: List[int] = []
    pool_broken = False
    saw_timeout = False
    phase_deadline = time.monotonic() + config.pool_timeout_seconds

    while pending and not pool_broken:
        try:
            pool = _get_pool(workers)
        except Exception as error:  # pool creation itself failed
            _record_failure(report, pending[0], attempts[pending[0]], error)
            pool_broken = True
            break
        handles: List[Tuple[int, object]] = []
        for index in pending:
            payload = dict(payloads[index])
            if fault_payload is not None:
                payload["faults"] = fault_payload
                payload["fault_ident"] = _fault_ident(index, payload)
                # Folded into the worker's roll scope: a retried attempt
                # draws a fresh fault schedule instead of deterministically
                # re-failing forever.
                payload["fault_attempt"] = attempts[index]
            try:
                handles.append((index, pool.apply_async(run_shard, (payload,))))
            except Exception as error:
                # The pool object itself is unusable (lost its workers,
                # already terminated, ...).  Everything not yet submitted
                # goes straight to quarantine.
                _record_failure(report, index, attempts[index], error)
                pool_broken = True
                break
        submitted = {index for index, _ in handles}
        retry_round: List[int] = []
        for index in pending:
            if index not in submitted:
                quarantine.append(index)
        for index, handle in handles:
            budget = min(
                config.task_timeout_seconds, phase_deadline - time.monotonic()
            )
            try:
                results[index] = handle.get(max(0.0, budget))
            except multiprocessing.TimeoutError as error:
                saw_timeout = True
                _record_failure(report, index, attempts[index], error)
                attempts[index] += 1
                if attempts[index] <= config.max_task_retries:
                    retry_round.append(index)
                else:
                    quarantine.append(index)
            except Exception as error:
                # The worker raised (injected crash, real bug, lost process
                # turned into a pool error) -- same retry policy.
                _record_failure(report, index, attempts[index], error)
                attempts[index] += 1
                if attempts[index] <= config.max_task_retries:
                    retry_round.append(index)
                else:
                    quarantine.append(index)
        retried.update(retry_round)
        pending = retry_round
        if pending and config.retry_backoff_seconds > 0:
            time.sleep(config.retry_backoff_seconds)

    if pool_broken:
        # Any task still in flight or unsubmitted when the pool broke.
        quarantine.extend(index for index in pending if results[index] is None)
    if pool_broken or saw_timeout:
        # A pool that lost workers or still holds a wedged task cannot be
        # trusted by later runs.
        _discard_pool(workers)

    report.retried_shards = len(retried)
    quarantine = sorted(set(quarantine))
    report.quarantined_shards = len(quarantine)
    for index in quarantine:
        if config.quarantine_inline:
            payload = dict(payloads[index])
            # Inline execution runs in the parent: worker-fault sites are
            # disarmed (no shipped plan; the parent plan is not in_worker).
            payload.pop("faults", None)
            try:
                results[index] = run_shard(payload)
                continue
            except Exception as error:
                _record_failure(report, index, attempts[index], error)
        # Subtree left to the caller's native exploration.
    report.failed_shards = sum(1 for result in results if result is None)
    return results


def prewarm_full(
    program: Program,
    procedure_name: str,
    cfg: ControlFlowGraph,
    summary_cache: SummaryCache,
    workers: int,
    depth_bound: Optional[int] = None,
    config: Optional[ShardConfig] = None,
    region_index: Optional[RegionHashIndex] = None,
    solver: Optional[ConstraintSolver] = None,
    roots_only: bool = False,
) -> ParallelReport:
    """Prewarm for *full* symbolic execution (stateless strategy)."""
    return prewarm_parallel(
        program,
        procedure_name,
        cfg,
        collector_strategy=ExploreEverything(),
        strategy_payload=lambda state: {"kind": "everything"},
        summary_cache=summary_cache,
        workers=workers,
        depth_bound=depth_bound,
        config=config,
        region_index=region_index,
        solver=solver,
        roots_only=roots_only,
    )


def prewarm_directed(
    program: Program,
    procedure_name: str,
    cfg: ControlFlowGraph,
    strategy_factory,
    summary_cache: SummaryCache,
    workers: int,
    depth_bound: Optional[int] = None,
    config: Optional[ShardConfig] = None,
    region_index: Optional[RegionHashIndex] = None,
    solver: Optional[ConstraintSolver] = None,
    roots_only: bool = False,
) -> ParallelReport:
    """Prewarm for DiSE's directed strategy.

    ``strategy_factory()`` must build a fresh
    :class:`~repro.core.directed.DirectedExplorationStrategy` configured
    exactly like the one the caller's serial run will use (the collector
    consumes its own instance; sharing one object would leak phase-1 set
    mutations into the replay run).
    """
    collector_strategy = strategy_factory()
    return prewarm_parallel(
        program,
        procedure_name,
        cfg,
        collector_strategy=collector_strategy,
        strategy_payload=lambda state: _directed_strategy_payload(collector_strategy, state),
        summary_cache=summary_cache,
        workers=workers,
        depth_bound=depth_bound,
        config=config,
        region_index=region_index,
        solver=solver,
        roots_only=roots_only,
    )
