"""Structural serialization across the process fence.

Terms are hash-consed per process: an interned term's ``term_id`` (and the
``id()``-based intern-table keys behind it) are meaningless in any other
process, and -- since interning went weak in PR 3 -- even in the *same*
process once the term's last reference dies.  Anything that crosses a
process boundary or is written to disk therefore encodes term **trees**
(structure only) and re-interns on decode, so the decoded value is the
receiving process's canonical instance and id-keyed caches keep working.

The codec produces JSON-compatible data (dicts, lists, strings, ints,
bools, None) so the same encoding backs three transports:

* ``multiprocessing`` task/result payloads of the sharded frontier workers
  (:mod:`repro.parallel.shard`);
* the on-disk :class:`~repro.parallel.store.PersistentSummaryStore`;
* test fixtures that pin the format.

Every container is a tagged list (``["T", ...]`` tuple, ``["F", ...]``
frozenset, ...), so arbitrary strategy replay tokens -- nested tuples of
frozensets, bools and ints -- round-trip exactly.  Terms use their own tags
mirroring the intern-table key shapes (``["i", 5]``, ``["y", "x", "int"]``,
``["o", "+", ..., ...]``).

Summary-cache entries need one extra step: their keys embed *intern ids*
(the environment fingerprint), which are resolved back to term trees via
the entry's pinned terms on encode and recomputed with
:func:`~repro.solver.terms.term_key` after re-interning on decode.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.solver.terms import (
    BinaryTerm,
    BoolConst,
    IntConst,
    NegTerm,
    NotTerm,
    Symbol,
    Term,
    intern_term,
    mk_binary,
    mk_bool,
    mk_int,
    mk_neg,
    mk_not,
    mk_symbol,
    term_key,
)
from repro.symexec.state import CallFrame, PathCondition, SymbolicState
from repro.symexec.summary import MethodSummary, PathRecord
from repro.symexec.summary_cache import (
    CacheKey,
    CallRecord,
    CallSummary,
    ReplayRecord,
    SegmentRecord,
    SegmentSummary,
    SubtreeSummary,
)


class SerializationError(Exception):
    """Raised when a value cannot be encoded or a payload cannot be decoded."""


# -- terms ---------------------------------------------------------------------

#: Tags used for term nodes; chosen disjoint from the container tags below.
_TERM_TAGS = {"i", "b", "y", "o", "!", "~"}


def encode_term(term: Term) -> list:
    """Encode one term as a nested tagged list (pure structure, no ids)."""
    if isinstance(term, IntConst):
        return ["i", term.value]
    if isinstance(term, BoolConst):
        return ["b", term.value]
    if isinstance(term, Symbol):
        return ["y", term.name, term.symbol_sort]
    if isinstance(term, BinaryTerm):
        return ["o", term.op, encode_term(term.left), encode_term(term.right)]
    if isinstance(term, NotTerm):
        return ["!", encode_term(term.operand)]
    if isinstance(term, NegTerm):
        return ["~", encode_term(term.operand)]
    raise SerializationError(f"Cannot encode term of type {type(term).__name__}")


def decode_term(data) -> Term:
    """Decode a term tree, re-interning every node in *this* process."""
    if not isinstance(data, list) or not data:
        raise SerializationError(f"Malformed term payload: {data!r}")
    tag = data[0]
    if tag == "i":
        return mk_int(data[1])
    if tag == "b":
        return mk_bool(bool(data[1]))
    if tag == "y":
        return mk_symbol(data[1], data[2])
    if tag == "o":
        return mk_binary(data[1], decode_term(data[2]), decode_term(data[3]))
    if tag == "!":
        return mk_not(decode_term(data[1]))
    if tag == "~":
        return mk_neg(decode_term(data[1]))
    raise SerializationError(f"Unknown term tag {tag!r}")


# -- generic values (strategy tokens, nested containers) -----------------------


def encode_value(value) -> object:
    """Encode a scalar/container/term value (strategy tokens, snapshots)."""
    if value is None or isinstance(value, (bool, int, str, float)):
        return value
    if isinstance(value, Term):
        return ["t", encode_term(value)]
    if isinstance(value, tuple):
        return ["T"] + [encode_value(item) for item in value]
    if isinstance(value, list):
        return ["L"] + [encode_value(item) for item in value]
    if isinstance(value, frozenset):
        return ["F"] + sorted((encode_value(item) for item in value), key=repr)
    if isinstance(value, set):
        return ["S"] + sorted((encode_value(item) for item in value), key=repr)
    if isinstance(value, dict):
        return ["D"] + [
            [encode_value(key), encode_value(item)] for key, item in sorted(value.items(), key=lambda kv: repr(kv[0]))
        ]
    raise SerializationError(f"Cannot encode value of type {type(value).__name__}")


def decode_value(data) -> object:
    if data is None or isinstance(data, (bool, int, str, float)):
        return data
    if not isinstance(data, list) or not data:
        raise SerializationError(f"Malformed value payload: {data!r}")
    tag, rest = data[0], data[1:]
    if tag == "t":
        return decode_term(rest[0])
    if tag == "T":
        return tuple(decode_value(item) for item in rest)
    if tag == "L":
        return [decode_value(item) for item in rest]
    if tag == "F":
        return frozenset(decode_value(item) for item in rest)
    if tag == "S":
        return {decode_value(item) for item in rest}
    if tag == "D":
        return {decode_value(key): decode_value(item) for key, item in rest}
    raise SerializationError(f"Unknown value tag {tag!r}")


# -- symbolic states -----------------------------------------------------------


def encode_environment(environment: Iterable[Tuple[str, Term]]) -> list:
    return [[name, encode_term(term)] for name, term in environment]


def decode_environment(data) -> Dict[str, Term]:
    return {name: decode_term(term) for name, term in data}


def encode_frames(frames: Tuple[CallFrame, ...]) -> list:
    """Encode a state's call stack; ``None`` saved bindings travel as null."""
    return [
        [
            frame.callee,
            [
                [name, None if term is None else encode_term(term)]
                for name, term in frame.saved
            ],
        ]
        for frame in frames
    ]


def decode_frames(data) -> Tuple[CallFrame, ...]:
    return tuple(
        CallFrame(
            callee=callee,
            saved=tuple(
                (name, None if term is None else decode_term(term))
                for name, term in saved
            ),
        )
        for callee, saved in data
    )


def encode_state(state: SymbolicState) -> dict:
    """Encode a symbolic state; the CFG node travels as its ``node_id``."""
    return {
        "node": state.node.node_id,
        "environment": encode_environment(state.environment),
        "constraints": [encode_term(term) for term in state.path_condition.constraints],
        "depth": state.depth,
        "trace": list(state.trace),
        "frames": encode_frames(state.frames),
    }


def decode_state(data, cfg) -> SymbolicState:
    """Decode a state against ``cfg`` (node ids must be from the same parse)."""
    return SymbolicState.make(
        node=cfg.node(data["node"]),
        environment=decode_environment(data["environment"]),
        path_condition=PathCondition(tuple(decode_term(t) for t in data["constraints"])),
        depth=data["depth"],
        trace=tuple(data["trace"]),
        frames=decode_frames(data.get("frames", [])),
    )


# -- path records / summaries --------------------------------------------------


def encode_path_record(record: PathRecord) -> dict:
    return {
        "constraints": [encode_term(t) for t in record.path_condition.constraints],
        "environment": encode_environment(record.final_environment),
        "trace": list(record.trace),
        "is_error": record.is_error,
    }


def decode_path_record(data) -> PathRecord:
    return PathRecord(
        path_condition=PathCondition(tuple(decode_term(t) for t in data["constraints"])),
        final_environment=tuple(sorted(decode_environment(data["environment"]).items())),
        trace=tuple(data["trace"]),
        is_error=data["is_error"],
    )


def encode_method_summary(summary: MethodSummary) -> dict:
    return {
        "procedure": summary.procedure_name,
        "records": [encode_path_record(record) for record in summary.records],
    }


def decode_method_summary(data) -> MethodSummary:
    summary = MethodSummary(data["procedure"])
    for record in data["records"]:
        summary.add(decode_path_record(record))
    return summary


# -- summary-cache entries -----------------------------------------------------


def _encode_writes(writes: Tuple[Tuple[str, Term], ...]) -> list:
    return [[name, encode_term(term)] for name, term in writes]


def _decode_writes(data) -> Tuple[Tuple[str, Term], ...]:
    return tuple((name, decode_term(term)) for name, term in data)


def encode_summary(summary) -> dict:
    """Encode a :class:`SubtreeSummary` or :class:`SegmentSummary`."""
    if isinstance(summary, SubtreeSummary):
        return {
            "kind": "subtree",
            "procedure": summary.procedure,
            "digest": summary.digest,
            "records": [
                {
                    "constraints": [encode_term(t) for t in record.constraints],
                    "writes": _encode_writes(record.writes),
                    "trace": list(record.trace),
                    "is_error": record.is_error,
                    "removed": list(record.removed),
                }
                for record in summary.records
            ],
            "strategy_after": encode_value(summary.strategy_after),
        }
    if isinstance(summary, SegmentSummary):
        return {
            "kind": "segment",
            "procedure": summary.procedure,
            "digest": summary.digest,
            "records": [
                {
                    "constraints": [encode_term(t) for t in record.constraints],
                    "writes": _encode_writes(record.writes),
                    "trace": list(record.trace),
                    "depth_delta": record.depth_delta,
                    "is_error": record.is_error,
                    "removed": list(record.removed),
                }
                for record in summary.records
            ],
        }
    if isinstance(summary, CallSummary):
        return {
            "kind": "call",
            "procedure": summary.procedure,
            "digest": summary.digest,
            "params": list(summary.params),
            "cfg_size": summary.cfg_size,
            "records": [
                {
                    "constraints": [encode_term(t) for t in record.constraints],
                    "writes": _encode_writes(record.writes),
                    "trace": list(record.trace),
                    "is_error": record.is_error,
                }
                for record in summary.records
            ],
        }
    raise SerializationError(f"Cannot encode summary of type {type(summary).__name__}")


def decode_summary(data):
    kind = data.get("kind")
    if kind == "subtree":
        return SubtreeSummary(
            procedure=data["procedure"],
            digest=data["digest"],
            records=tuple(
                ReplayRecord(
                    constraints=tuple(decode_term(t) for t in record["constraints"]),
                    writes=_decode_writes(record["writes"]),
                    trace=tuple(record["trace"]),
                    is_error=record["is_error"],
                    removed=tuple(record.get("removed", ())),
                )
                for record in data["records"]
            ),
            strategy_after=decode_value(data["strategy_after"]),
        )
    if kind == "segment":
        return SegmentSummary(
            procedure=data["procedure"],
            digest=data["digest"],
            records=tuple(
                SegmentRecord(
                    constraints=tuple(decode_term(t) for t in record["constraints"]),
                    writes=_decode_writes(record["writes"]),
                    trace=tuple(record["trace"]),
                    depth_delta=record["depth_delta"],
                    is_error=record["is_error"],
                    removed=tuple(record.get("removed", ())),
                )
                for record in data["records"]
            ),
        )
    if kind == "call":
        return CallSummary(
            procedure=data["procedure"],
            digest=data["digest"],
            records=tuple(
                CallRecord(
                    constraints=tuple(decode_term(t) for t in record["constraints"]),
                    writes=_decode_writes(record["writes"]),
                    trace=tuple(record["trace"]),
                    is_error=record["is_error"],
                )
                for record in data["records"]
            ),
            params=tuple(data["params"]),
            cfg_size=data["cfg_size"],
        )
    raise SerializationError(f"Unknown summary kind {kind!r}")


def encode_cache_entry(key: CacheKey, summary, pins: Tuple[Term, ...]) -> dict:
    """Encode one summary-cache entry structurally.

    The key's environment fingerprint holds ``(name, intern id)`` pairs; the
    ids are resolved to term trees through the entry's pinned terms (the
    recording root's environment, a superset of every fingerprinted value).
    An id no pin resolves is a hard error -- silently dropping the name
    would produce a key that can never have existed.
    """
    kind, digest, fingerprint, token, budget = key
    by_id = {}
    for pin in pins:
        interned = intern_term(pin)
        by_id[interned.__dict__["term_id"]] = interned
    encoded_fingerprint = []
    for name, value_id in fingerprint:
        # Plain environment entries use string names; call-frame entries use
        # tuple names like ("@saved", depth, var) which need the tagged
        # container encoding to round-trip as tuples.
        encoded_name = encode_value(name)
        if value_id == -1:
            encoded_fingerprint.append([encoded_name, None])
            continue
        term = by_id.get(value_id)
        if term is None:
            raise SerializationError(
                f"Fingerprint id {value_id} for {name!r} is not covered by the entry's pins"
            )
        encoded_fingerprint.append([encoded_name, encode_term(term)])
    return {
        "kind": kind,
        "digest": digest,
        "fingerprint": encoded_fingerprint,
        "token": encode_value(token),
        "budget": budget,
        "summary": encode_summary(summary),
    }


def decode_cache_entry(data) -> Tuple[CacheKey, object, Tuple[Term, ...]]:
    """Decode one entry; returns ``(key, summary, pins)`` for adoption.

    The fingerprint's term trees are re-interned here, so the rebuilt key
    uses *this* process's intern ids; the decoded terms are returned as the
    entry's pins so those ids stay alive for as long as the entry can hit.
    """
    pins: List[Term] = []
    fingerprint = []
    for encoded_name, encoded in data["fingerprint"]:
        name = decode_value(encoded_name)
        if encoded is None:
            fingerprint.append((name, -1))
            continue
        term = decode_term(encoded)
        pins.append(term)
        fingerprint.append((name, term_key(term)))
    key: CacheKey = (
        data["kind"],
        data["digest"],
        tuple(fingerprint),
        decode_value(data["token"]),
        data["budget"],
    )
    return key, decode_summary(data["summary"]), tuple(pins)


def encode_cache_entries(entries) -> list:
    """Encode an iterable of ``(key, summary, pins)`` triples.

    Entries whose fingerprint ids cannot be resolved from their pins are
    skipped (they could never be rebuilt on the other side); everything
    else is encoded structurally.
    """
    from repro import faults

    plan = faults.active_plan()
    encoded = []
    for index, (key, summary, pins) in enumerate(entries):
        try:
            entry = encode_cache_entry(key, summary, pins)
        except SerializationError:
            continue
        if plan is not None and plan.fires(
            "corrupt-frame", f"entry{index}:{key[1]}"
        ):
            # Fault site ``corrupt-frame``: mangle this entry's serialized
            # form (models a worker corrupting a result frame mid-encode).
            # The decoder must reject it -- merge skips it, counted; it may
            # never be adopted.
            entry = dict(entry)
            entry.pop("summary", None)
            entry["kind"] = "corrupt"
        encoded.append(entry)
    return encoded


_SHARD_RESULT_FIELDS = ("entries", "paths", "states", "elapsed")


def encode_shard_result(
    entries: list, paths: int, states: int, elapsed: float, obs: Optional[dict] = None
) -> dict:
    """The worker's return envelope: cache entries plus run accounting.

    A fixed, explicitly typed shape so the parent can *validate* what came
    back over the fence instead of indexing into whatever arrived -- the
    scheduler's cost model consumes ``paths``/``elapsed`` as numbers and a
    silently mistyped field would poison its estimates rather than fail.

    ``obs`` optionally carries the worker's exported telemetry payload
    (:meth:`repro.obs.spans.TraceRecorder.export_payload`).  It rides along
    *leniently*: a missing or mistyped telemetry blob is dropped by the
    decoder, never failing a shard whose actual results are intact.
    """
    return {
        "entries": entries,
        "paths": int(paths),
        "states": int(states),
        "elapsed": float(elapsed),
        "obs": obs if isinstance(obs, dict) else None,
    }


def decode_shard_result(data) -> dict:
    """Validate a worker's result envelope; raises :class:`SerializationError`.

    A malformed envelope (truncated pickle payload, fault-mangled frame, a
    worker returning the wrong object entirely) is a *worker fault*: the
    dispatcher treats the decode failure exactly like a crashed shard --
    retry, then quarantine -- never as data.
    """
    if not isinstance(data, dict):
        raise SerializationError(
            f"shard result is {type(data).__name__}, expected a dict envelope"
        )
    missing = [name for name in _SHARD_RESULT_FIELDS if name not in data]
    if missing:
        raise SerializationError(f"shard result missing fields: {missing}")
    if not isinstance(data["entries"], list):
        raise SerializationError("shard result 'entries' is not a list")
    obs_payload = data.get("obs")
    try:
        return {
            "entries": data["entries"],
            "paths": int(data["paths"]),
            "states": int(data["states"]),
            "elapsed": float(data["elapsed"]),
            # Telemetry is best-effort by contract: anything that is not a
            # dict decodes to None instead of failing the shard.
            "obs": obs_payload if isinstance(obs_payload, dict) else None,
        }
    except (TypeError, ValueError) as error:
        raise SerializationError(f"shard result has non-numeric accounting: {error}")
