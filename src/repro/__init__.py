"""repro: a Python reproduction of Directed Incremental Symbolic Execution (DiSE, PLDI 2011).

The package is organised bottom-up:

* :mod:`repro.lang` -- the MiniLang imperative language front end.
* :mod:`repro.cfg` -- control flow graphs and the static analyses DiSE needs
  (post-dominance, control dependence, def/use, reachability, SCCs).
* :mod:`repro.solver` -- a linear integer arithmetic constraint solver used to
  decide path conditions and to generate concrete test inputs.
* :mod:`repro.symexec` -- a full (traditional) symbolic execution engine.
* :mod:`repro.diff` -- structural differencing of two program versions.
* :mod:`repro.core` -- the paper's contribution: affected-location computation
  and directed incremental symbolic execution.
* :mod:`repro.evolution` -- software-evolution applications (test generation,
  regression test selection and augmentation).
* :mod:`repro.artifacts` -- the programs used in the paper's evaluation
  (WBS, ASW, OAE re-creations and the motivating examples) plus mutants.
* :mod:`repro.reporting` -- renderers for the paper's tables and figures.

Quickstart::

    from repro import parse_program, symbolic_execute, run_dise

    base = parse_program(BASE_SOURCE)
    mod = parse_program(MODIFIED_SOURCE)
    result = run_dise(base, mod, procedure="update")
    for pc in result.path_conditions:
        print(pc)
"""

from repro.lang import parse_program, parse_procedure
from repro.cfg import build_cfg
from repro.symexec import SymbolicExecutor, symbolic_execute
from repro.core import DiSE, run_dise
from repro.evolution import generate_tests, select_and_augment

__version__ = "1.0.0"

__all__ = [
    "parse_program",
    "parse_procedure",
    "build_cfg",
    "SymbolicExecutor",
    "symbolic_execute",
    "DiSE",
    "run_dise",
    "generate_tests",
    "select_and_augment",
    "__version__",
]
