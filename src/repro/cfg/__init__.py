"""Control flow graphs and the static analyses required by DiSE.

This subpackage provides:

* :class:`~repro.cfg.graph.ControlFlowGraph` (Definition 3.1) and its builder;
* post-dominance (Definition 3.8) and control dependence (Definition 3.9);
* Def/Use maps (Definitions 3.6/3.7), reachability (Definition 3.2) and a
  reaching-definitions analysis;
* strongly connected components / loop detection for ``CheckLoops``;
* Graphviz DOT export used by the figure benchmarks.
"""

from repro.cfg.builder import RETURN_VARIABLE, CFGBuilder, build_cfg
from repro.cfg.callgraph import (
    CallGraph,
    CallGraphError,
    CallSite,
    build_call_graph,
    procedure_digests,
)
from repro.cfg.control_dependence import ControlDependence, compute_control_dependence
from repro.cfg.dataflow import DefUse, Reachability, ReachingDefinitions
from repro.cfg.dominance import PostDominance, compute_post_dominance
from repro.cfg.dot import cfg_to_dot
from repro.cfg.graph import BEGIN_NODE_ID, END_NODE_ID, ControlFlowGraph, node_set_names
from repro.cfg.ir import (
    FALLTHROUGH_EDGE,
    FALSE_EDGE,
    TRUE_EDGE,
    CFGEdge,
    CFGNode,
    NodeKind,
)
from repro.cfg.scc import SCCAnalysis

__all__ = [
    "BEGIN_NODE_ID",
    "END_NODE_ID",
    "RETURN_VARIABLE",
    "CFGBuilder",
    "build_cfg",
    "CallGraph",
    "CallGraphError",
    "CallSite",
    "build_call_graph",
    "procedure_digests",
    "ControlDependence",
    "compute_control_dependence",
    "DefUse",
    "Reachability",
    "ReachingDefinitions",
    "PostDominance",
    "compute_post_dominance",
    "cfg_to_dot",
    "ControlFlowGraph",
    "node_set_names",
    "CFGEdge",
    "CFGNode",
    "NodeKind",
    "TRUE_EDGE",
    "FALSE_EDGE",
    "FALLTHROUGH_EDGE",
    "SCCAnalysis",
]
