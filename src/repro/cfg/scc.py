"""Strongly connected components and loop-entry detection.

The ``CheckLoops`` procedure of the directed search (paper Fig. 6, lines
26-28) needs ``IsLoopEntryNode`` and ``GetSCC``.  We use Tarjan's algorithm
(iterative, to avoid recursion limits on large CFGs) and treat an SCC as a
loop when it contains more than one node or a self-edge.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set

from repro.cfg.graph import ControlFlowGraph
from repro.cfg.ir import CFGNode


class SCCAnalysis:
    """Tarjan SCC decomposition plus loop-entry classification."""

    def __init__(self, cfg: ControlFlowGraph):
        self.cfg = cfg
        self._component_of: Dict[int, int] = {}
        self._components: List[FrozenSet[int]] = []
        self._loop_components: Set[int] = set()
        self._loop_entries: Set[int] = set()
        self._compute()

    def _compute(self) -> None:
        index_counter = 0
        index: Dict[int, int] = {}
        lowlink: Dict[int, int] = {}
        on_stack: Set[int] = set()
        stack: List[int] = []

        def successors(node_id: int) -> List[int]:
            return [n.node_id for n in self.cfg.successors(self.cfg.node(node_id))]

        for start in [n.node_id for n in self.cfg.nodes]:
            if start in index:
                continue
            work = [(start, iter(successors(start)))]
            index[start] = lowlink[start] = index_counter
            index_counter += 1
            stack.append(start)
            on_stack.add(start)
            while work:
                node_id, successor_iter = work[-1]
                advanced = False
                for succ in successor_iter:
                    if succ not in index:
                        index[succ] = lowlink[succ] = index_counter
                        index_counter += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(successors(succ))))
                        advanced = True
                        break
                    if succ in on_stack:
                        lowlink[node_id] = min(lowlink[node_id], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node_id])
                if lowlink[node_id] == index[node_id]:
                    component: Set[int] = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.add(member)
                        if member == node_id:
                            break
                    component_index = len(self._components)
                    self._components.append(frozenset(component))
                    for member in component:
                        self._component_of[member] = component_index

        self._classify_loops()

    def _classify_loops(self) -> None:
        for component_index, component in enumerate(self._components):
            is_loop = len(component) > 1
            if not is_loop:
                (only,) = component
                node = self.cfg.node(only)
                is_loop = any(s.node_id == only for s in self.cfg.successors(node))
            if not is_loop:
                continue
            self._loop_components.add(component_index)
            # A loop entry is a component member with a predecessor outside the SCC.
            for member in component:
                node = self.cfg.node(member)
                for pred in self.cfg.predecessors(node):
                    if pred.node_id not in component:
                        self._loop_entries.add(member)
                        break

    # -- queries -------------------------------------------------------------

    def components(self) -> List[FrozenSet[int]]:
        """All SCCs as frozensets of node identifiers."""
        return list(self._components)

    def scc_of(self, node: CFGNode) -> FrozenSet[int]:
        """``GetSCC(n)``: the identifiers of the SCC containing ``node``."""
        return self._components[self._component_of[node.node_id]]

    def is_loop_entry(self, node: CFGNode) -> bool:
        """``IsLoopEntryNode(n)``: is ``node`` the entry of a loop SCC?"""
        return node.node_id in self._loop_entries

    def is_in_loop(self, node: CFGNode) -> bool:
        """True when ``node`` belongs to a loop SCC."""
        return self._component_of[node.node_id] in self._loop_components

    def loop_nodes(self) -> FrozenSet[int]:
        """Identifiers of all nodes that are part of some loop."""
        members: Set[int] = set()
        for component_index in self._loop_components:
            members |= self._components[component_index]
        return frozenset(members)
