"""Intermediate representation: the node vocabulary of MiniLang CFGs.

The DiSE static analysis (paper Definitions 3.3-3.7) is phrased over two node
classes: conditional branch nodes (``Cond``) and write nodes (``Write``).
The CFG builder lowers MiniLang statements onto exactly those classes plus a
few structural nodes (begin/end/nop/error).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Optional, Tuple

from repro.lang.ast_nodes import Expr, Stmt


class NodeKind(Enum):
    """The kind of a CFG node."""

    BEGIN = auto()   # synthetic procedure entry
    END = auto()     # synthetic procedure exit
    ASSIGN = auto()  # a write instruction (Definition 3.5)
    BRANCH = auto()  # a conditional branch instruction (Definition 3.4)
    NOP = auto()     # skip / declarations without initialisers / return without effect
    ERROR = auto()   # target of a failed assertion (de-sugared ``assert``)
    CALL = auto()         # call entry: evaluates args, pushes a call frame
    CALL_RETURN = auto()  # call exit: pops the frame, binds the return value


@dataclass
class CFGNode:
    """A single node of a control flow graph.

    Attributes:
        node_id: unique integer identifier within the owning CFG; the paper's
            ``n0``, ``n1``, ... labels correspond to these identifiers.
        kind: the node's :class:`NodeKind`.
        line: source line of the originating statement (0 for synthetic nodes).
        label: human-readable description used in traces, tables and DOT output.
        stmt: the originating AST statement, if any.
        condition: for ``BRANCH`` nodes, the branch predicate expression.
        target: for ``ASSIGN`` nodes, the variable being defined; for
            ``CALL_RETURN`` nodes, the variable receiving the return value
            (``None`` for bare calls).
        expr: for ``ASSIGN`` nodes, the right-hand side expression.
        callee: for ``CALL``/``CALL_RETURN`` nodes, the called procedure.
        call_args: for ``CALL`` nodes, the argument expressions (evaluated in
            the caller's scope before the frame is pushed).
        call_params: for ``CALL`` nodes, the callee's formal parameter names
            (bound, in order, to the evaluated arguments).
        scope_names: for ``CALL``/``CALL_RETURN`` nodes, every name the
            callee's scope can bind (params, locals and the synthetic return
            variable).  The engine switches scope wholesale (the call frame
            saves every non-global caller binding, see
            :class:`repro.symexec.state.CallFrame`); ``scope_names`` is what
            the feasibility lookahead's walk -- which models the switch
            in-place -- saves at the call and poisons at an unmatched
            return.
        return_node_id: for ``CALL`` nodes, the matching ``CALL_RETURN``.
        call_node_id: for ``CALL_RETURN`` nodes, the matching ``CALL``.
        callee_digest: for ``CALL``/``CALL_RETURN`` nodes, the transitive
            content hash of the callee (name-independent), so region digests
            are stable under callee renames-without-edit and change exactly
            when the callee's IR changes.
        call_depth: call-splice nesting level of the node in a flattened
            interprocedural CFG (0 for the entry procedure's own nodes).
    """

    node_id: int
    kind: NodeKind
    line: int = 0
    label: str = ""
    stmt: Optional[Stmt] = None
    condition: Optional[Expr] = None
    target: Optional[str] = None
    expr: Optional[Expr] = None
    callee: Optional[str] = None
    call_args: Tuple[Expr, ...] = ()
    call_params: Tuple[str, ...] = ()
    scope_names: Tuple[str, ...] = ()
    return_node_id: Optional[int] = None
    call_node_id: Optional[int] = None
    callee_digest: Optional[str] = None
    call_depth: int = 0
    # Lazy memos: nodes are immutable after construction, but region hashing
    # recomputes per-node keys once per *containing region* (O(n) regions per
    # CFG), so without these the AST walks are quadratic in CFG size.
    _used_vars: Optional[Tuple[str, ...]] = field(
        default=None, repr=False, compare=False
    )
    _structural_key: Optional[tuple] = field(default=None, repr=False, compare=False)

    @property
    def name(self) -> str:
        """The paper-style node name, e.g. ``n0``, ``n7``."""
        if self.kind is NodeKind.BEGIN:
            return "nbegin"
        if self.kind is NodeKind.END:
            return "nend"
        return f"n{self.node_id}"

    @property
    def is_branch(self) -> bool:
        """True if this node is a conditional branch instruction (Cond set)."""
        return self.kind is NodeKind.BRANCH

    @property
    def is_write(self) -> bool:
        """True if this node is a write instruction (Write set).

        ``CALL`` nodes define the callee's formals and ``CALL_RETURN`` nodes
        define the call target, so both participate in the write-node rules
        of the affected-location analysis.
        """
        if self.kind is NodeKind.CALL:
            return bool(self.call_params)
        if self.kind is NodeKind.CALL_RETURN:
            return self.target is not None
        return self.kind is NodeKind.ASSIGN

    def defined_variable(self) -> Optional[str]:
        """``Def(n)`` from Definition 3.6: the variable defined here, or None.

        ``CALL`` nodes define several variables at once (one per formal); use
        :meth:`defined_variables` to see all of them.
        """
        if self.kind in (NodeKind.ASSIGN, NodeKind.CALL_RETURN):
            return self.target
        return None

    def defined_variables(self) -> Tuple[str, ...]:
        """All variables defined at this node (generalises ``Def(n)``)."""
        if self.kind is NodeKind.CALL:
            return self.call_params
        defined = self.defined_variable()
        return (defined,) if defined is not None else ()

    def used_variables(self) -> Tuple[str, ...]:
        """``Use(n)`` from Definition 3.7: the variables read at this node."""
        if self._used_vars is None:
            object.__setattr__(self, "_used_vars", self._compute_used_variables())
        return self._used_vars

    def _compute_used_variables(self) -> Tuple[str, ...]:
        if self.kind is NodeKind.ASSIGN and self.expr is not None:
            return self.expr.variables()
        if self.kind is NodeKind.BRANCH and self.condition is not None:
            return self.condition.variables()
        if self.kind is NodeKind.CALL:
            seen = []
            for arg in self.call_args:
                for name in arg.variables():
                    if name not in seen:
                        seen.append(name)
            return tuple(seen)
        if self.kind is NodeKind.CALL_RETURN and self.target is not None:
            from repro.cfg.builder import RETURN_VARIABLE  # local import: no cycle at module load

            return (RETURN_VARIABLE,)
        return ()

    def structural_key(self) -> tuple:
        """A key describing the node's behaviour, used by the CFG differ.

        Call nodes key on the callee's *content digest* rather than its name,
        so renaming a procedure without editing it leaves every region digest
        that covers its call sites unchanged.
        """
        if self._structural_key is None:
            object.__setattr__(
                self, "_structural_key", self._compute_structural_key()
            )
        return self._structural_key

    def _compute_structural_key(self) -> tuple:
        if self.kind is NodeKind.ASSIGN:
            expr_key = self.expr.structural_key() if self.expr is not None else None
            return ("assign", self.target, expr_key)
        if self.kind is NodeKind.BRANCH:
            cond_key = self.condition.structural_key() if self.condition is not None else None
            return ("branch", cond_key)
        if self.kind is NodeKind.CALL:
            return (
                "call",
                self.callee_digest,
                tuple(arg.structural_key() for arg in self.call_args),
            )
        if self.kind is NodeKind.CALL_RETURN:
            return ("call_return", self.target, self.callee_digest)
        return (self.kind.name.lower(),)

    def __str__(self) -> str:
        return f"{self.name}: {self.label}" if self.label else self.name

    def __hash__(self) -> int:
        return hash((id(self.__class__), self.node_id))


#: Edge labels used on outgoing edges of BRANCH nodes.
TRUE_EDGE = "true"
FALSE_EDGE = "false"
#: Edge label used on all other edges.
FALLTHROUGH_EDGE = ""


@dataclass(frozen=True)
class CFGEdge:
    """A directed, labelled edge between two CFG nodes."""

    source: int
    target: int
    label: str = FALLTHROUGH_EDGE

    def __str__(self) -> str:
        suffix = f" [{self.label}]" if self.label else ""
        return f"n{self.source} -> n{self.target}{suffix}"
