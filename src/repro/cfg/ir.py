"""Intermediate representation: the node vocabulary of MiniLang CFGs.

The DiSE static analysis (paper Definitions 3.3-3.7) is phrased over two node
classes: conditional branch nodes (``Cond``) and write nodes (``Write``).
The CFG builder lowers MiniLang statements onto exactly those classes plus a
few structural nodes (begin/end/nop/error).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Optional, Tuple

from repro.lang.ast_nodes import Expr, Stmt


class NodeKind(Enum):
    """The kind of a CFG node."""

    BEGIN = auto()   # synthetic procedure entry
    END = auto()     # synthetic procedure exit
    ASSIGN = auto()  # a write instruction (Definition 3.5)
    BRANCH = auto()  # a conditional branch instruction (Definition 3.4)
    NOP = auto()     # skip / declarations without initialisers / return without effect
    ERROR = auto()   # target of a failed assertion (de-sugared ``assert``)


@dataclass
class CFGNode:
    """A single node of a control flow graph.

    Attributes:
        node_id: unique integer identifier within the owning CFG; the paper's
            ``n0``, ``n1``, ... labels correspond to these identifiers.
        kind: the node's :class:`NodeKind`.
        line: source line of the originating statement (0 for synthetic nodes).
        label: human-readable description used in traces, tables and DOT output.
        stmt: the originating AST statement, if any.
        condition: for ``BRANCH`` nodes, the branch predicate expression.
        target: for ``ASSIGN`` nodes, the variable being defined.
        expr: for ``ASSIGN`` nodes, the right-hand side expression.
    """

    node_id: int
    kind: NodeKind
    line: int = 0
    label: str = ""
    stmt: Optional[Stmt] = None
    condition: Optional[Expr] = None
    target: Optional[str] = None
    expr: Optional[Expr] = None

    @property
    def name(self) -> str:
        """The paper-style node name, e.g. ``n0``, ``n7``."""
        if self.kind is NodeKind.BEGIN:
            return "nbegin"
        if self.kind is NodeKind.END:
            return "nend"
        return f"n{self.node_id}"

    @property
    def is_branch(self) -> bool:
        """True if this node is a conditional branch instruction (Cond set)."""
        return self.kind is NodeKind.BRANCH

    @property
    def is_write(self) -> bool:
        """True if this node is a write instruction (Write set)."""
        return self.kind is NodeKind.ASSIGN

    def defined_variable(self) -> Optional[str]:
        """``Def(n)`` from Definition 3.6: the variable defined here, or None."""
        if self.kind is NodeKind.ASSIGN:
            return self.target
        return None

    def used_variables(self) -> Tuple[str, ...]:
        """``Use(n)`` from Definition 3.7: the variables read at this node."""
        if self.kind is NodeKind.ASSIGN and self.expr is not None:
            return self.expr.variables()
        if self.kind is NodeKind.BRANCH and self.condition is not None:
            return self.condition.variables()
        return ()

    def structural_key(self) -> tuple:
        """A key describing the node's behaviour, used by the CFG differ."""
        if self.kind is NodeKind.ASSIGN:
            expr_key = self.expr.structural_key() if self.expr is not None else None
            return ("assign", self.target, expr_key)
        if self.kind is NodeKind.BRANCH:
            cond_key = self.condition.structural_key() if self.condition is not None else None
            return ("branch", cond_key)
        return (self.kind.name.lower(),)

    def __str__(self) -> str:
        return f"{self.name}: {self.label}" if self.label else self.name

    def __hash__(self) -> int:
        return hash((id(self.__class__), self.node_id))


#: Edge labels used on outgoing edges of BRANCH nodes.
TRUE_EDGE = "true"
FALSE_EDGE = "false"
#: Edge label used on all other edges.
FALLTHROUGH_EDGE = ""


@dataclass(frozen=True)
class CFGEdge:
    """A directed, labelled edge between two CFG nodes."""

    source: int
    target: int
    label: str = FALLTHROUGH_EDGE

    def __str__(self) -> str:
        suffix = f" [{self.label}]" if self.label else ""
        return f"n{self.source} -> n{self.target}{suffix}"
