"""Graphviz DOT export for CFGs.

Used by the Figure 2 benchmark/example to render the ``update`` CFG the same
way the paper draws it, and handy when debugging artifact programs.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from repro.cfg.graph import ControlFlowGraph
from repro.cfg.ir import CFGNode, NodeKind


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def cfg_to_dot(
    cfg: ControlFlowGraph,
    highlight: Optional[Iterable[CFGNode]] = None,
    changed: Optional[Iterable[CFGNode]] = None,
    title: Optional[str] = None,
) -> str:
    """Render ``cfg`` as a Graphviz DOT digraph.

    Args:
        cfg: the control flow graph to render.
        highlight: nodes to draw with a filled style (e.g. affected nodes).
        changed: nodes to draw with a bold red outline (e.g. changed nodes).
        title: optional graph label; defaults to the procedure name.
    """
    highlight_ids: Set[int] = {n.node_id for n in (highlight or [])}
    changed_ids: Set[int] = {n.node_id for n in (changed or [])}
    label = title if title is not None else f"CFG for {cfg.procedure_name}"

    lines = ["digraph cfg {"]
    lines.append(f'    label="{_escape(label)}";')
    lines.append("    node [shape=box, fontname=Helvetica];")
    for node in cfg.nodes:
        attributes = [f'label="{_escape(_node_label(node))}"']
        if node.kind in (NodeKind.BEGIN, NodeKind.END):
            attributes.append("shape=ellipse")
        if node.kind is NodeKind.BRANCH:
            attributes.append("shape=diamond")
        if node.kind in (NodeKind.CALL, NodeKind.CALL_RETURN):
            attributes.append("shape=component")
        if node.node_id in highlight_ids:
            attributes.append("style=filled")
            attributes.append("fillcolor=lightgoldenrod")
        if node.node_id in changed_ids:
            attributes.append("color=red")
            attributes.append("penwidth=2")
        lines.append(f'    "{node.name}" [{", ".join(attributes)}];')
    for edge in cfg.edges:
        source = cfg.node(edge.source).name
        target = cfg.node(edge.target).name
        if edge.label:
            lines.append(f'    "{source}" -> "{target}" [label="{_escape(edge.label)}"];')
        else:
            lines.append(f'    "{source}" -> "{target}";')
    lines.append("}")
    return "\n".join(lines)


def _node_label(node: CFGNode) -> str:
    if node.kind is NodeKind.BEGIN:
        return "begin"
    if node.kind is NodeKind.END:
        return "end"
    prefix = f"{node.name}"
    if node.line:
        return f"{prefix}\\n{node.line}: {node.label}"
    return f"{prefix}\\n{node.label}"
