"""Post-dominance analysis (paper Definition 3.8).

``postDom(ni, nj)`` is true when every CFG path from ``ni`` to the exit node
passes through ``nj``.  The relation is reflexive (a node post-dominates
itself), matching the paper's example where ``postDom(n1, n1)`` is true.

The analysis is the classic iterative data-flow formulation over the reversed
CFG: ``pdom(n) = {n} ∪ ⋂ pdom(s) for successors s of n``, seeded with the
full node set and iterated to a fixed point.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Set

from repro.cfg.graph import ControlFlowGraph
from repro.cfg.ir import CFGNode


class PostDominance:
    """Post-dominator sets for every node of a CFG."""

    def __init__(self, cfg: ControlFlowGraph):
        self.cfg = cfg
        self._pdom: Dict[int, Set[int]] = {}
        self._compute()

    def _compute(self) -> None:
        if self.cfg.end is None:
            raise ValueError("CFG has no end node")
        all_ids = {node.node_id for node in self.cfg.nodes}
        exit_id = self.cfg.end.node_id

        pdom: Dict[int, Set[int]] = {}
        for node in self.cfg.nodes:
            if node.node_id == exit_id:
                pdom[node.node_id] = {exit_id}
            else:
                pdom[node.node_id] = set(all_ids)

        changed = True
        while changed:
            changed = False
            for node in self.cfg.nodes:
                if node.node_id == exit_id:
                    continue
                successors = self.cfg.successors(node)
                if successors:
                    intersection: Optional[Set[int]] = None
                    for succ in successors:
                        succ_set = pdom[succ.node_id]
                        intersection = (
                            set(succ_set) if intersection is None else intersection & succ_set
                        )
                    new_set = {node.node_id} | (intersection or set())
                else:
                    # A node with no successors other than itself: only it
                    # post-dominates itself (should not occur in well-formed CFGs).
                    new_set = {node.node_id}
                if new_set != pdom[node.node_id]:
                    pdom[node.node_id] = new_set
                    changed = True
        self._pdom = pdom

    def post_dominators(self, node: CFGNode) -> FrozenSet[int]:
        """The identifiers of all nodes that post-dominate ``node``."""
        return frozenset(self._pdom[node.node_id])

    def post_dominates(self, first: CFGNode, second: CFGNode) -> bool:
        """``postDom(first, second)``: does ``second`` post-dominate ``first``?"""
        return second.node_id in self._pdom[first.node_id]

    def immediate_post_dominator(self, node: CFGNode) -> Optional[CFGNode]:
        """The unique closest strict post-dominator of ``node`` (None for the exit)."""
        assert self.cfg.end is not None
        if node.node_id == self.cfg.end.node_id:
            return None
        strict = self._pdom[node.node_id] - {node.node_id}
        # The immediate post-dominator is the strict post-dominator that is
        # itself post-dominated only by other members of the strict set.
        for candidate_id in strict:
            others = strict - {candidate_id}
            if all(other in self._pdom[candidate_id] for other in others):
                return self.cfg.node(candidate_id)
        return None


def compute_post_dominance(cfg: ControlFlowGraph) -> PostDominance:
    """Convenience constructor for :class:`PostDominance`."""
    return PostDominance(cfg)
