"""Data-flow facts over a CFG: Def/Use maps, reachability and reaching definitions.

These implement Definitions 3.2, 3.6 and 3.7 of the paper, plus a classic
reaching-definitions analysis that is not strictly required by the DiSE rules
(which only use Def/Use + ``IsCFGPath``) but is useful for clients and for
cross-checking the conservative rule (4) in tests.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.cfg.graph import ControlFlowGraph
from repro.cfg.ir import CFGNode


class DefUse:
    """Definition and use information for every node of a CFG."""

    def __init__(self, cfg: ControlFlowGraph):
        self.cfg = cfg
        self._defs: Dict[int, Tuple[str, ...]] = {}
        self._uses: Dict[int, Tuple[str, ...]] = {}
        for node in cfg.nodes:
            defined = node.defined_variables()
            if defined:
                self._defs[node.node_id] = defined
            self._uses[node.node_id] = node.used_variables()

    def definition(self, node: CFGNode) -> str:
        """``Def(n)``: the variable defined at ``node`` or ``None`` (paper's ⊥).

        ``CALL`` nodes define one variable per formal parameter; this keeps
        the paper's single-variable view by reporting the first.  Use
        :meth:`definitions` in analyses that must see them all.
        """
        defined = self._defs.get(node.node_id)
        return defined[0] if defined else None

    def definitions(self, node: CFGNode) -> Tuple[str, ...]:
        """All variables defined at ``node`` (generalised ``Def(n)``)."""
        return self._defs.get(node.node_id, ())

    def uses(self, node: CFGNode) -> Tuple[str, ...]:
        """``Use(n)``: the variables read at ``node`` (empty tuple for ⊥)."""
        return self._uses.get(node.node_id, ())

    def defines(self, node: CFGNode, variable: str) -> bool:
        """True when ``node`` defines ``variable``."""
        return variable in self._defs.get(node.node_id, ())

    def nodes_defining(self, variable: str) -> List[CFGNode]:
        """All nodes that define ``variable``."""
        return [self.cfg.node(i) for i, vs in self._defs.items() if variable in vs]

    def nodes_using(self, variable: str) -> List[CFGNode]:
        """All nodes that read ``variable``."""
        return [self.cfg.node(i) for i, vs in self._uses.items() if variable in vs]


class Reachability:
    """Precomputed ``IsCFGPath`` relation (Definition 3.2) for a CFG.

    The relation is reflexive; computing it once up front keeps the DiSE
    fixed-point and the directed search fast on repeated queries.
    """

    def __init__(self, cfg: ControlFlowGraph):
        self.cfg = cfg
        self._reachable: Dict[int, FrozenSet[int]] = {}
        for node in cfg.nodes:
            self._reachable[node.node_id] = frozenset(cfg.reachable_from(node))

    def is_cfg_path(self, source: CFGNode, target: CFGNode) -> bool:
        """True when there is a CFG path from ``source`` to ``target``."""
        return target.node_id in self._reachable[source.node_id]

    def reachable_ids(self, source: CFGNode) -> FrozenSet[int]:
        """All node identifiers reachable from ``source`` (including itself)."""
        return self._reachable[source.node_id]


class ReachingDefinitions:
    """Classic reaching-definitions data-flow analysis.

    ``IN(n)`` / ``OUT(n)`` are sets of ``(variable, defining node id)`` pairs.
    """

    def __init__(self, cfg: ControlFlowGraph):
        self.cfg = cfg
        self.def_use = DefUse(cfg)
        self._in: Dict[int, Set[Tuple[str, int]]] = {n.node_id: set() for n in cfg.nodes}
        self._out: Dict[int, Set[Tuple[str, int]]] = {n.node_id: set() for n in cfg.nodes}
        self._compute()

    def _compute(self) -> None:
        changed = True
        while changed:
            changed = False
            for node in self.cfg.nodes:
                new_in: Set[Tuple[str, int]] = set()
                for pred in self.cfg.predecessors(node):
                    new_in |= self._out[pred.node_id]
                defined = self.def_use.definitions(node)
                if defined:
                    new_out = {pair for pair in new_in if pair[0] not in defined}
                    new_out.update((variable, node.node_id) for variable in defined)
                else:
                    new_out = set(new_in)
                if new_in != self._in[node.node_id] or new_out != self._out[node.node_id]:
                    self._in[node.node_id] = new_in
                    self._out[node.node_id] = new_out
                    changed = True

    def reaching_in(self, node: CFGNode) -> FrozenSet[Tuple[str, int]]:
        """The definitions reaching the entry of ``node``."""
        return frozenset(self._in[node.node_id])

    def reaching_out(self, node: CFGNode) -> FrozenSet[Tuple[str, int]]:
        """The definitions reaching the exit of ``node``."""
        return frozenset(self._out[node.node_id])

    def definitions_reaching_use(self, node: CFGNode, variable: str) -> List[CFGNode]:
        """All defining nodes of ``variable`` whose definition reaches ``node``."""
        return [
            self.cfg.node(def_id)
            for var, def_id in self._in[node.node_id]
            if var == variable
        ]
