"""The control flow graph data structure (paper Definition 3.1).

A :class:`ControlFlowGraph` is a directed graph with a single ``begin`` node
and a single ``end`` node; every node is reachable from ``begin`` and the
``end`` node is reachable from every node (for well-formed procedures).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.cfg.ir import FALLTHROUGH_EDGE, CFGEdge, CFGNode, NodeKind
from repro.lang.ast_nodes import Expr, Stmt

#: Reserved node identifiers for the synthetic entry and exit nodes.
BEGIN_NODE_ID = -1
END_NODE_ID = -2


class ControlFlowGraph:
    """A mutable control flow graph for a single procedure."""

    def __init__(self, procedure_name: str = ""):
        self.procedure_name = procedure_name
        self._nodes: Dict[int, CFGNode] = {}
        self._successors: Dict[int, List[CFGEdge]] = {}
        self._predecessors: Dict[int, List[CFGEdge]] = {}
        self._next_id = 0
        self.begin: Optional[CFGNode] = None
        self.end: Optional[CFGNode] = None
        #: Maps ``id(stmt)`` of the originating AST statement to the CFG nodes
        #: generated for it; used by the differ to mark changed nodes.
        self.stmt_to_nodes: Dict[int, List[CFGNode]] = {}

    # -- construction -------------------------------------------------------

    def new_node(
        self,
        kind: NodeKind,
        line: int = 0,
        label: str = "",
        stmt: Optional[Stmt] = None,
        condition: Optional[Expr] = None,
        target: Optional[str] = None,
        expr: Optional[Expr] = None,
        **call_fields,
    ) -> CFGNode:
        """Create a node, register it and return it.

        Statement nodes are numbered 0, 1, 2, ... in creation (source) order so
        that node names line up with the paper's ``n0``, ``n1``, ... labels;
        the synthetic begin and end nodes use reserved identifiers.
        ``call_fields`` forwards the call-node attributes (``callee``,
        ``call_args``, ``call_params``, ``scope_names``, ``callee_digest``,
        ``call_depth``, ...) to the :class:`CFGNode` constructor.
        """
        if kind is NodeKind.BEGIN:
            node_id = BEGIN_NODE_ID
        elif kind is NodeKind.END:
            node_id = END_NODE_ID
        else:
            node_id = self._next_id
            self._next_id += 1
        node = CFGNode(
            node_id=node_id,
            kind=kind,
            line=line,
            label=label,
            stmt=stmt,
            condition=condition,
            target=target,
            expr=expr,
            **call_fields,
        )
        self._nodes[node.node_id] = node
        self._successors[node.node_id] = []
        self._predecessors[node.node_id] = []
        if kind is NodeKind.BEGIN:
            self.begin = node
        elif kind is NodeKind.END:
            self.end = node
        if stmt is not None:
            self.stmt_to_nodes.setdefault(id(stmt), []).append(node)
        return node

    def add_edge(self, source: CFGNode, target: CFGNode, label: str = FALLTHROUGH_EDGE) -> CFGEdge:
        """Add a directed edge from ``source`` to ``target``."""
        edge = CFGEdge(source.node_id, target.node_id, label)
        self._successors[source.node_id].append(edge)
        self._predecessors[target.node_id].append(edge)
        return edge

    # -- basic queries -------------------------------------------------------

    def node(self, node_id: int) -> CFGNode:
        """Return the node with the given identifier."""
        return self._nodes[node_id]

    @property
    def nodes(self) -> List[CFGNode]:
        """All nodes: begin first, then statement nodes in source order, then end."""
        ordered: List[CFGNode] = []
        if self.begin is not None:
            ordered.append(self.begin)
        ordered.extend(self._nodes[i] for i in sorted(self._nodes) if i >= 0)
        if self.end is not None:
            ordered.append(self.end)
        return ordered

    @property
    def edges(self) -> List[CFGEdge]:
        """All edges."""
        result: List[CFGEdge] = []
        for node_id in sorted(self._successors):
            result.extend(self._successors[node_id])
        return result

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[CFGNode]:
        return iter(self.nodes)

    def __contains__(self, node: CFGNode) -> bool:
        return node.node_id in self._nodes and self._nodes[node.node_id] is node

    def successors(self, node: CFGNode) -> List[CFGNode]:
        """Successor nodes of ``node`` in edge-insertion order."""
        return [self._nodes[e.target] for e in self._successors[node.node_id]]

    def predecessors(self, node: CFGNode) -> List[CFGNode]:
        """Predecessor nodes of ``node``."""
        return [self._nodes[e.source] for e in self._predecessors[node.node_id]]

    def out_edges(self, node: CFGNode) -> List[CFGEdge]:
        """Outgoing edges of ``node``."""
        return list(self._successors[node.node_id])

    def successor_on(self, node: CFGNode, label: str) -> CFGNode:
        """The successor reached from ``node`` along the edge labelled ``label``."""
        for edge in self._successors[node.node_id]:
            if edge.label == label:
                return self._nodes[edge.target]
        raise KeyError(f"Node {node.name} has no outgoing edge labelled {label!r}")

    # -- node classes (Definitions 3.3 - 3.5) --------------------------------

    def branch_nodes(self) -> List[CFGNode]:
        """``Cond``: all conditional branch nodes."""
        return [n for n in self.nodes if n.is_branch]

    def write_nodes(self) -> List[CFGNode]:
        """``Write``: all write nodes."""
        return [n for n in self.nodes if n.is_write]

    def variables(self) -> Set[str]:
        """``Vars``: every variable read or written in the procedure."""
        result: Set[str] = set()
        for node in self.nodes:
            defined = node.defined_variable()
            if defined is not None:
                result.add(defined)
            result.update(node.used_variables())
        return result

    # -- reachability --------------------------------------------------------

    def reachable_from(self, node: CFGNode) -> Set[int]:
        """The identifiers of all nodes reachable from ``node`` (including itself)."""
        seen: Set[int] = set()
        stack = [node.node_id]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            for edge in self._successors[current]:
                if edge.target not in seen:
                    stack.append(edge.target)
        return seen

    def is_cfg_path(self, source: CFGNode, target: CFGNode) -> bool:
        """``IsCFGPath`` from Definition 3.2 (reflexive: a node reaches itself)."""
        if source.node_id == target.node_id:
            return True
        return target.node_id in self.reachable_from(source)

    def check_well_formed(self) -> None:
        """Verify the invariants of Definition 3.1.

        Raises:
            ValueError: if the graph has no begin/end node, if some node is
                unreachable from begin, or if end is unreachable from some node.
        """
        if self.begin is None or self.end is None:
            raise ValueError("CFG must have begin and end nodes")
        from_begin = self.reachable_from(self.begin)
        for node in self.nodes:
            if node.node_id not in from_begin:
                raise ValueError(f"Node {node.name} is not reachable from nbegin")
            if not self.is_cfg_path(node, self.end):
                raise ValueError(f"nend is not reachable from node {node.name}")

    # -- convenience ---------------------------------------------------------

    def nodes_for_statement(self, stmt: Stmt) -> List[CFGNode]:
        """All CFG nodes generated from the given AST statement."""
        return list(self.stmt_to_nodes.get(id(stmt), []))

    def nodes_at_line(self, line: int) -> List[CFGNode]:
        """All CFG nodes whose originating statement is on ``line``."""
        return [n for n in self.nodes if n.line == line]

    def describe(self) -> str:
        """A readable multi-line description of nodes and edges."""
        lines = [f"CFG for {self.procedure_name or '<anonymous>'}"]
        for node in self.nodes:
            succ = ", ".join(
                f"{self._nodes[e.target].name}{'[' + e.label + ']' if e.label else ''}"
                for e in self._successors[node.node_id]
            )
            lines.append(f"  {node.name:<8} {node.kind.name:<7} {node.label:<30} -> {succ}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return f"ControlFlowGraph({self.procedure_name!r}, nodes={len(self)})"


def node_set_names(nodes: Iterable[CFGNode]) -> Tuple[str, ...]:
    """Sorted paper-style names for a collection of nodes (test/trace helper)."""
    return tuple(sorted((n.name for n in nodes), key=lambda s: (len(s), s)))
