"""Call graph and name-independent procedure content digests.

The interprocedural pipeline needs two facts about a program's procedures:

* **who calls whom** (and from which statements), so change impact can be
  propagated from an edited callee to every call site that reaches it; and
* a **content digest** per procedure that is a pure function of the
  procedure's *behaviour* -- its parameters, its body IR and, transitively,
  the content of every procedure it calls -- but never of procedure *names*.
  Region hashes embed these digests at call sites
  (:meth:`repro.cfg.ir.CFGNode.structural_key`), which makes a caller
  region's digest change exactly when a callee it reaches is edited, and
  keeps it stable when a callee is merely renamed.

Recursion is rejected by the validator (:mod:`repro.lang.validate`); the
digest computation guards against cycles anyway so it can be used on
unvalidated programs without hanging.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.lang.ast_nodes import (
    CallStmt,
    If,
    Procedure,
    Program,
    Stmt,
    While,
    walk_statements,
)


class CallGraphError(ValueError):
    """Raised for unresolvable callees or call cycles."""


@dataclass(frozen=True)
class CallSite:
    """One syntactic call: the calling procedure, statement and callee."""

    caller: str
    callee: str
    stmt: CallStmt
    line: int


@dataclass
class CallGraph:
    """The static call structure of one program."""

    program: Program
    #: caller name -> callee names in first-call order.
    callees: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: callee name -> caller names (sorted).
    callers: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    sites: List[CallSite] = field(default_factory=list)

    def calls(self, caller: str) -> Tuple[str, ...]:
        return self.callees.get(caller, ())

    def callers_of(self, callee: str) -> Tuple[str, ...]:
        return self.callers.get(callee, ())

    def transitive_callees(self, name: str) -> FrozenSet[str]:
        """Every procedure reachable from ``name`` through calls (exclusive)."""
        seen: Set[str] = set()
        stack = list(self.callees.get(name, ()))
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.callees.get(current, ()))
        return frozenset(seen)

    def reaches(self, caller: str, callee: str) -> bool:
        """True when ``caller`` can (transitively) call ``callee``."""
        return callee in self.transitive_callees(caller)

    def topological_order(self) -> List[str]:
        """Procedure names with every callee before its callers.

        Raises:
            CallGraphError: when the call graph contains a cycle.
        """
        order: List[str] = []
        state: Dict[str, int] = {}  # 1 = on stack, 2 = done
        for proc in self.program.procedures:
            if state.get(proc.name):
                continue
            stack: List[Tuple[str, int]] = [(proc.name, 0)]
            state[proc.name] = 1
            while stack:
                name, index = stack[-1]
                callees = self.callees.get(name, ())
                if index >= len(callees):
                    state[name] = 2
                    order.append(name)
                    stack.pop()
                    continue
                stack[-1] = (name, index + 1)
                callee = callees[index]
                if state.get(callee) == 1:
                    raise CallGraphError(f"Call cycle through {callee!r}")
                if not state.get(callee):
                    state[callee] = 1
                    stack.append((callee, 0))
        return order


def build_call_graph(program: Program) -> CallGraph:
    """Build the :class:`CallGraph` of ``program``.

    Raises:
        CallGraphError: when a call names a procedure the program lacks.
    """
    graph = CallGraph(program=program)
    defined = {proc.name for proc in program.procedures}
    callers: Dict[str, Set[str]] = {}
    for proc in program.procedures:
        callee_order: List[str] = []
        for stmt in walk_statements(proc.body):
            if not isinstance(stmt, CallStmt):
                continue
            if stmt.callee not in defined:
                raise CallGraphError(
                    f"{proc.name}: call to undefined procedure {stmt.callee!r} "
                    f"(line {stmt.line})"
                )
            graph.sites.append(
                CallSite(caller=proc.name, callee=stmt.callee, stmt=stmt, line=stmt.line)
            )
            if stmt.callee not in callee_order:
                callee_order.append(stmt.callee)
            callers.setdefault(stmt.callee, set()).add(proc.name)
        graph.callees[proc.name] = tuple(callee_order)
    graph.callers = {name: tuple(sorted(names)) for name, names in callers.items()}
    return graph


# ---------------------------------------------------------------------------
# content digests
# ---------------------------------------------------------------------------


def _content_key(stmt: Stmt, digests: Dict[str, str]) -> tuple:
    """A statement's structural key with callee names replaced by digests."""
    if isinstance(stmt, CallStmt):
        return (
            "call",
            stmt.target,
            digests[stmt.callee],
            tuple(arg.structural_key() for arg in stmt.args),
        )
    if isinstance(stmt, If):
        return (
            "if",
            stmt.condition.structural_key(),
            tuple(_content_key(s, digests) for s in stmt.then_body),
            tuple(_content_key(s, digests) for s in stmt.else_body),
        )
    if isinstance(stmt, While):
        return (
            "while",
            stmt.condition.structural_key(),
            tuple(_content_key(s, digests) for s in stmt.body),
        )
    return stmt.structural_key()


def _procedure_digest(proc: Procedure, digests: Dict[str, str]) -> str:
    key = (
        "proc-content",
        tuple(p.structural_key() for p in proc.params),
        tuple(_content_key(s, digests) for s in proc.body),
    )
    return hashlib.blake2b(repr(key).encode("utf-8"), digest_size=16).hexdigest()


def procedure_digests(
    program: Program, call_graph: CallGraph = None
) -> Dict[str, str]:
    """Name-independent, transitively call-aware content digests.

    ``digests[p] == digests[q]`` iff the two procedures have identical
    parameters and bodies up to renaming of the procedures they call (with
    the renamed callees themselves content-identical, recursively).  Editing
    any transitively reachable callee changes the caller's digest.
    """
    graph = call_graph if call_graph is not None else build_call_graph(program)
    digests: Dict[str, str] = {}
    for name in graph.topological_order():
        digests[name] = _procedure_digest(program.procedure(name), digests)
    return digests


def _contains_while(statements) -> bool:
    return any(isinstance(stmt, While) for stmt in walk_statements(statements))


def loopy_procedures(program: Program, call_graph: CallGraph = None) -> FrozenSet[str]:
    """Names of procedures containing a ``While`` directly or transitively.

    A procedure in this set has an unbounded standalone path set, so the
    engine never records a generalised (fresh-formal) call summary for it --
    calls to it always execute natively.
    """
    graph = call_graph if call_graph is not None else build_call_graph(program)
    loopy: Set[str] = set()
    for name in graph.topological_order():
        if _contains_while(program.procedure(name).body) or any(
            callee in loopy for callee in graph.callees.get(name, ())
        ):
            loopy.add(name)
    return frozenset(loopy)
