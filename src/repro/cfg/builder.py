"""Lowering of MiniLang procedures to control flow graphs.

Every statement becomes one CFG node (writes and conditional branches), so
the resulting graph matches the vocabulary of the DiSE static analysis:

* ``VarDecl`` and ``Assign`` become write (``ASSIGN``) nodes;
* ``if``/``while``/``assert`` conditions become ``BRANCH`` nodes;
* ``assert`` is de-sugared the way the paper describes (section 5.1): the
  false edge of its branch node leads to an ``ERROR`` node which then flows
  to the procedure exit;
* ``return`` flows directly to the exit node (or, inside a spliced callee,
  to the call site's ``CALL_RETURN`` node);
* node identifiers are assigned in source order so the example in Figure 2
  of the paper produces the same ``n0`` ... ``n14`` naming.

**Interprocedural flattening.**  A :class:`~repro.lang.ast_nodes.CallStmt`
lowers to a ``CALL`` node, the callee's body spliced inline (recursion is
rejected, so splicing terminates), and a matching ``CALL_RETURN`` node:

* the ``CALL`` node evaluates the arguments in the caller's scope and pushes
  a call frame (the engine sets aside every non-global caller binding and
  switches to ``globals ∪ formals`` -- see
  :class:`repro.symexec.state.CallFrame`);
* the spliced body is an ordinary re-lowering of the callee's statements,
  one fresh flat node per statement per call site, so every analysis
  (affected sets, control dependence, region hashing, the lookahead) works
  on one plain graph;
* the ``CALL_RETURN`` node pops the frame, restores the caller's shadowed
  bindings and assigns the callee's return value to the call target;
* ``assert`` failures inside a callee flow to the flattened graph's exit --
  an assertion violation aborts the whole execution, not just the callee.

Call nodes carry the callee's name-independent content digest
(:func:`repro.cfg.callgraph.procedure_digests`), so region hashes over the
flattened graph change exactly when a transitively called procedure's IR
changes -- and survive pure renames.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cfg.graph import ControlFlowGraph
from repro.cfg.ir import FALLTHROUGH_EDGE, FALSE_EDGE, TRUE_EDGE, CFGNode, NodeKind
from repro.lang.ast_nodes import (
    Assert,
    Assign,
    BoolLiteral,
    CallStmt,
    If,
    IntLiteral,
    Procedure,
    Program,
    Return,
    Skip,
    Stmt,
    VarDecl,
    While,
)

#: A dangling edge waiting for its target: (source node, edge label).
PendingEdge = Tuple[CFGNode, str]

#: Name of the synthetic variable that receives ``return <expr>`` values.
RETURN_VARIABLE = "__return__"


class CFGBuilder:
    """Builds a :class:`ControlFlowGraph` from a MiniLang procedure.

    Args:
        procedure: the (entry) procedure to lower.
        program: the owning program; required to resolve procedure calls
            (supplies the callee bodies spliced inline and their content
            digests).  A bare procedure without calls lowers fine without it.
    """

    def __init__(self, procedure: Procedure, program: Optional[Program] = None):
        self.procedure = procedure
        self.program = program
        self.cfg = ControlFlowGraph(procedure.name)
        #: Edges that must go to the innermost return target: the procedure
        #: exit at splice depth 0, the active CALL_RETURN node inside a
        #: spliced callee.
        self._deferred_exit_edges: List[PendingEdge] = []
        #: Edges from assertion-failure ERROR nodes; always routed to the
        #: flattened graph's exit regardless of splice depth.
        self._deferred_error_edges: List[PendingEdge] = []
        #: Current call-splice nesting depth and the active callee chain
        #: (recursion guard for unvalidated programs).
        self._call_depth = 0
        self._splice_stack: List[str] = []
        self._digests: Optional[Dict[str, str]] = None

    def build(self) -> ControlFlowGraph:
        """Construct and return the CFG for the procedure."""
        begin = self._new_node(NodeKind.BEGIN, label="begin")
        pending = self._build_statements(self.procedure.body, [(begin, FALLTHROUGH_EDGE)])
        end = self._new_node(NodeKind.END, label="end")
        self._connect(pending, end)
        for node, label in self._deferred_exit_edges + self._deferred_error_edges:
            self.cfg.add_edge(node, end, label)
        self.cfg.check_well_formed()
        return self.cfg

    def _new_node(self, kind: NodeKind, **fields) -> CFGNode:
        """Create a node stamped with the current call-splice depth."""
        return self.cfg.new_node(kind, call_depth=self._call_depth, **fields)

    def _connect(self, pending: List[PendingEdge], target: CFGNode) -> None:
        for node, label in pending:
            self.cfg.add_edge(node, target, label)

    def _build_statements(
        self, statements: List[Stmt], pending: List[PendingEdge]
    ) -> List[PendingEdge]:
        for stmt in statements:
            if not pending:
                # Unreachable code after a return; still build nodes so that the
                # diff analysis can see them, but they stay disconnected from
                # the incoming flow (and well-formedness will reject them).
                break
            pending = self._build_statement(stmt, pending)
        return pending

    def _build_statement(self, stmt: Stmt, pending: List[PendingEdge]) -> List[PendingEdge]:
        if isinstance(stmt, (Assign, VarDecl)):
            return self._build_write(stmt, pending)
        if isinstance(stmt, CallStmt):
            return self._build_call(stmt, pending)
        if isinstance(stmt, If):
            return self._build_if(stmt, pending)
        if isinstance(stmt, While):
            return self._build_while(stmt, pending)
        if isinstance(stmt, Assert):
            return self._build_assert(stmt, pending)
        if isinstance(stmt, Return):
            return self._build_return(stmt, pending)
        if isinstance(stmt, Skip):
            node = self._new_node(NodeKind.NOP, line=stmt.line, label="skip", stmt=stmt)
            self._connect(pending, node)
            return [(node, FALLTHROUGH_EDGE)]
        raise TypeError(f"Cannot lower statement of type {type(stmt).__name__}")

    def _build_write(self, stmt: Stmt, pending: List[PendingEdge]) -> List[PendingEdge]:
        if isinstance(stmt, Assign):
            target, expr = stmt.name, stmt.value
        else:
            assert isinstance(stmt, VarDecl)
            target = stmt.name
            if stmt.init is not None:
                expr = stmt.init
            elif stmt.type_name == "bool":
                expr = BoolLiteral(False, line=stmt.line)
            else:
                expr = IntLiteral(0, line=stmt.line)
        node = self._new_node(
            NodeKind.ASSIGN,
            line=stmt.line,
            label=f"{target} = {expr}",
            stmt=stmt,
            target=target,
            expr=expr,
        )
        self._connect(pending, node)
        return [(node, FALLTHROUGH_EDGE)]

    def _build_if(self, stmt: If, pending: List[PendingEdge]) -> List[PendingEdge]:
        branch = self._new_node(
            NodeKind.BRANCH,
            line=stmt.line,
            label=str(stmt.condition),
            stmt=stmt,
            condition=stmt.condition,
        )
        self._connect(pending, branch)
        then_pending = self._build_statements(stmt.then_body, [(branch, TRUE_EDGE)])
        else_pending = self._build_statements(stmt.else_body, [(branch, FALSE_EDGE)])
        return then_pending + else_pending

    def _build_while(self, stmt: While, pending: List[PendingEdge]) -> List[PendingEdge]:
        branch = self._new_node(
            NodeKind.BRANCH,
            line=stmt.line,
            label=str(stmt.condition),
            stmt=stmt,
            condition=stmt.condition,
        )
        self._connect(pending, branch)
        body_pending = self._build_statements(stmt.body, [(branch, TRUE_EDGE)])
        self._connect(body_pending, branch)
        return [(branch, FALSE_EDGE)]

    def _build_assert(self, stmt: Assert, pending: List[PendingEdge]) -> List[PendingEdge]:
        branch = self._new_node(
            NodeKind.BRANCH,
            line=stmt.line,
            label=f"assert {stmt.condition}",
            stmt=stmt,
            condition=stmt.condition,
        )
        self._connect(pending, branch)
        error = self._new_node(
            NodeKind.ERROR,
            line=stmt.line,
            label="assertion failure",
            stmt=stmt,
        )
        self.cfg.add_edge(branch, error, FALSE_EDGE)
        self._deferred_error_edges.append((error, FALLTHROUGH_EDGE))
        return [(branch, TRUE_EDGE)]

    def _build_return(self, stmt: Return, pending: List[PendingEdge]) -> List[PendingEdge]:
        if stmt.value is not None:
            node = self._new_node(
                NodeKind.ASSIGN,
                line=stmt.line,
                label=f"{RETURN_VARIABLE} = {stmt.value}",
                stmt=stmt,
                target=RETURN_VARIABLE,
                expr=stmt.value,
            )
        else:
            node = self._new_node(NodeKind.NOP, line=stmt.line, label="return", stmt=stmt)
        self._connect(pending, node)
        self._deferred_exit_edges.append((node, FALLTHROUGH_EDGE))
        return []

    # -- interprocedural splicing --------------------------------------------

    def _callee_digests(self) -> Dict[str, str]:
        if self._digests is None:
            from repro.cfg.callgraph import procedure_digests  # import cycle guard

            self._digests = procedure_digests(self.program)
        return self._digests

    def _build_call(self, stmt: CallStmt, pending: List[PendingEdge]) -> List[PendingEdge]:
        """Lower ``[y =] f(args);`` to CALL -> spliced body -> CALL_RETURN."""
        if self.program is None:
            raise ValueError(
                f"Cannot lower call to {stmt.callee!r}: build the CFG from the "
                f"Program (build_cfg(program, procedure_name)) so callees resolve"
            )
        if stmt.callee in self._splice_stack or stmt.callee == self.procedure.name:
            chain = " -> ".join(self._splice_stack + [stmt.callee])
            raise ValueError(f"Recursive call cycle ({chain}) cannot be flattened")
        try:
            callee = self.program.procedure(stmt.callee)
        except KeyError:
            raise ValueError(
                f"Call to undefined procedure {stmt.callee!r} (line {stmt.line})"
            ) from None
        if len(stmt.args) != len(callee.params):
            raise ValueError(
                f"Procedure {stmt.callee!r} takes {len(callee.params)} argument(s), "
                f"got {len(stmt.args)} (line {stmt.line})"
            )

        params = tuple(callee.param_names())
        scope = list(params)
        for name in callee.local_names() + [RETURN_VARIABLE]:
            if name not in scope:
                scope.append(name)
        scope_names = tuple(scope)
        digest = self._callee_digests()[stmt.callee]
        args_text = ", ".join(str(arg) for arg in stmt.args)

        call_node = self._new_node(
            NodeKind.CALL,
            line=stmt.line,
            label=f"call {stmt.callee}({args_text})",
            stmt=stmt,
            callee=stmt.callee,
            call_args=tuple(stmt.args),
            call_params=params,
            scope_names=scope_names,
            callee_digest=digest,
        )
        self._connect(pending, call_node)

        # Splice the callee body: its returns flow to the CALL_RETURN node,
        # its assertion failures keep flowing to the flattened exit.
        outer_exits = self._deferred_exit_edges
        self._deferred_exit_edges = []
        self._splice_stack.append(stmt.callee)
        self._call_depth += 1
        body_pending = self._build_statements(callee.body, [(call_node, FALLTHROUGH_EDGE)])
        self._call_depth -= 1
        self._splice_stack.pop()
        callee_exits = self._deferred_exit_edges
        self._deferred_exit_edges = outer_exits

        return_label = f"{stmt.target} = ret {stmt.callee}" if stmt.target else f"ret {stmt.callee}"
        return_node = self._new_node(
            NodeKind.CALL_RETURN,
            line=stmt.line,
            label=return_label,
            stmt=stmt,
            target=stmt.target,
            callee=stmt.callee,
            scope_names=scope_names,
            call_node_id=call_node.node_id,
            callee_digest=digest,
        )
        call_node.return_node_id = return_node.node_id
        self._connect(body_pending + callee_exits, return_node)
        return [(return_node, FALLTHROUGH_EDGE)]


def build_cfg(procedure_or_program, procedure_name: Optional[str] = None) -> ControlFlowGraph:
    """Build the (flattened, call-spliced) CFG of a procedure.

    Args:
        procedure_or_program: either a :class:`Procedure` or a :class:`Program`.
            A program is required for procedures containing calls, so the
            callee bodies can be spliced in.
        procedure_name: when a program is given, the entry procedure to lower
            (defaults to the first procedure in the program).

    Returns:
        The control flow graph of the selected procedure.

    Raises:
        KeyError: when ``procedure_name`` names no procedure of the program.
        ValueError: for empty programs, unresolvable calls or recursion.
    """
    program: Optional[Program] = None
    if isinstance(procedure_or_program, Program):
        program = procedure_or_program
        if procedure_name is None:
            if not program.procedures:
                raise ValueError("Program contains no procedures")
            procedure = program.procedures[0]
        else:
            procedure = program.procedure(procedure_name)
    elif isinstance(procedure_or_program, Procedure):
        procedure = procedure_or_program
    else:
        raise TypeError("build_cfg expects a Procedure or a Program")
    return CFGBuilder(procedure, program).build()
