"""Lowering of MiniLang procedures to control flow graphs.

Every statement becomes one CFG node (writes and conditional branches), so
the resulting graph matches the vocabulary of the DiSE static analysis:

* ``VarDecl`` and ``Assign`` become write (``ASSIGN``) nodes;
* ``if``/``while``/``assert`` conditions become ``BRANCH`` nodes;
* ``assert`` is de-sugared the way the paper describes (section 5.1): the
  false edge of its branch node leads to an ``ERROR`` node which then flows
  to the procedure exit;
* ``return`` flows directly to the exit node;
* node identifiers are assigned in source order so the example in Figure 2
  of the paper produces the same ``n0`` ... ``n14`` naming.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cfg.graph import ControlFlowGraph
from repro.cfg.ir import FALLTHROUGH_EDGE, FALSE_EDGE, TRUE_EDGE, CFGNode, NodeKind
from repro.lang.ast_nodes import (
    Assert,
    Assign,
    BoolLiteral,
    If,
    IntLiteral,
    Procedure,
    Program,
    Return,
    Skip,
    Stmt,
    VarDecl,
    While,
)

#: A dangling edge waiting for its target: (source node, edge label).
PendingEdge = Tuple[CFGNode, str]

#: Name of the synthetic variable that receives ``return <expr>`` values.
RETURN_VARIABLE = "__return__"


class CFGBuilder:
    """Builds a :class:`ControlFlowGraph` from a MiniLang procedure."""

    def __init__(self, procedure: Procedure):
        self.procedure = procedure
        self.cfg = ControlFlowGraph(procedure.name)
        #: Edges that must go straight to the exit node (returns, error nodes).
        self._deferred_exit_edges: List[PendingEdge] = []

    def build(self) -> ControlFlowGraph:
        """Construct and return the CFG for the procedure."""
        begin = self.cfg.new_node(NodeKind.BEGIN, label="begin")
        pending = self._build_statements(self.procedure.body, [(begin, FALLTHROUGH_EDGE)])
        end = self.cfg.new_node(NodeKind.END, label="end")
        self._connect(pending, end)
        for node, label in self._deferred_exit_edges:
            self.cfg.add_edge(node, end, label)
        self.cfg.check_well_formed()
        return self.cfg

    def _connect(self, pending: List[PendingEdge], target: CFGNode) -> None:
        for node, label in pending:
            self.cfg.add_edge(node, target, label)

    def _build_statements(
        self, statements: List[Stmt], pending: List[PendingEdge]
    ) -> List[PendingEdge]:
        for stmt in statements:
            if not pending:
                # Unreachable code after a return; still build nodes so that the
                # diff analysis can see them, but they stay disconnected from
                # the incoming flow (and well-formedness will reject them).
                break
            pending = self._build_statement(stmt, pending)
        return pending

    def _build_statement(self, stmt: Stmt, pending: List[PendingEdge]) -> List[PendingEdge]:
        if isinstance(stmt, (Assign, VarDecl)):
            return self._build_write(stmt, pending)
        if isinstance(stmt, If):
            return self._build_if(stmt, pending)
        if isinstance(stmt, While):
            return self._build_while(stmt, pending)
        if isinstance(stmt, Assert):
            return self._build_assert(stmt, pending)
        if isinstance(stmt, Return):
            return self._build_return(stmt, pending)
        if isinstance(stmt, Skip):
            node = self.cfg.new_node(NodeKind.NOP, line=stmt.line, label="skip", stmt=stmt)
            self._connect(pending, node)
            return [(node, FALLTHROUGH_EDGE)]
        raise TypeError(f"Cannot lower statement of type {type(stmt).__name__}")

    def _build_write(self, stmt: Stmt, pending: List[PendingEdge]) -> List[PendingEdge]:
        if isinstance(stmt, Assign):
            target, expr = stmt.name, stmt.value
        else:
            assert isinstance(stmt, VarDecl)
            target = stmt.name
            if stmt.init is not None:
                expr = stmt.init
            elif stmt.type_name == "bool":
                expr = BoolLiteral(False, line=stmt.line)
            else:
                expr = IntLiteral(0, line=stmt.line)
        node = self.cfg.new_node(
            NodeKind.ASSIGN,
            line=stmt.line,
            label=f"{target} = {expr}",
            stmt=stmt,
            target=target,
            expr=expr,
        )
        self._connect(pending, node)
        return [(node, FALLTHROUGH_EDGE)]

    def _build_if(self, stmt: If, pending: List[PendingEdge]) -> List[PendingEdge]:
        branch = self.cfg.new_node(
            NodeKind.BRANCH,
            line=stmt.line,
            label=str(stmt.condition),
            stmt=stmt,
            condition=stmt.condition,
        )
        self._connect(pending, branch)
        then_pending = self._build_statements(stmt.then_body, [(branch, TRUE_EDGE)])
        else_pending = self._build_statements(stmt.else_body, [(branch, FALSE_EDGE)])
        return then_pending + else_pending

    def _build_while(self, stmt: While, pending: List[PendingEdge]) -> List[PendingEdge]:
        branch = self.cfg.new_node(
            NodeKind.BRANCH,
            line=stmt.line,
            label=str(stmt.condition),
            stmt=stmt,
            condition=stmt.condition,
        )
        self._connect(pending, branch)
        body_pending = self._build_statements(stmt.body, [(branch, TRUE_EDGE)])
        self._connect(body_pending, branch)
        return [(branch, FALSE_EDGE)]

    def _build_assert(self, stmt: Assert, pending: List[PendingEdge]) -> List[PendingEdge]:
        branch = self.cfg.new_node(
            NodeKind.BRANCH,
            line=stmt.line,
            label=f"assert {stmt.condition}",
            stmt=stmt,
            condition=stmt.condition,
        )
        self._connect(pending, branch)
        error = self.cfg.new_node(
            NodeKind.ERROR,
            line=stmt.line,
            label="assertion failure",
            stmt=stmt,
        )
        self.cfg.add_edge(branch, error, FALSE_EDGE)
        self._deferred_exit_edges.append((error, FALLTHROUGH_EDGE))
        return [(branch, TRUE_EDGE)]

    def _build_return(self, stmt: Return, pending: List[PendingEdge]) -> List[PendingEdge]:
        if stmt.value is not None:
            node = self.cfg.new_node(
                NodeKind.ASSIGN,
                line=stmt.line,
                label=f"{RETURN_VARIABLE} = {stmt.value}",
                stmt=stmt,
                target=RETURN_VARIABLE,
                expr=stmt.value,
            )
        else:
            node = self.cfg.new_node(NodeKind.NOP, line=stmt.line, label="return", stmt=stmt)
        self._connect(pending, node)
        self._deferred_exit_edges.append((node, FALLTHROUGH_EDGE))
        return []


def build_cfg(procedure_or_program, procedure_name: Optional[str] = None) -> ControlFlowGraph:
    """Build the CFG of a procedure.

    Args:
        procedure_or_program: either a :class:`Procedure` or a :class:`Program`.
        procedure_name: when a program is given, the procedure to lower
            (defaults to the first procedure in the program).

    Returns:
        The control flow graph of the selected procedure.
    """
    if isinstance(procedure_or_program, Program):
        program = procedure_or_program
        if procedure_name is None:
            if not program.procedures:
                raise ValueError("Program contains no procedures")
            procedure = program.procedures[0]
        else:
            procedure = program.procedure(procedure_name)
    elif isinstance(procedure_or_program, Procedure):
        procedure = procedure_or_program
    else:
        raise TypeError("build_cfg expects a Procedure or a Program")
    return CFGBuilder(procedure).build()
