"""Control dependence analysis (paper Definition 3.9).

``controlD(ni, nj)`` is true when ``ni`` has two distinct successors ``nk``
and ``nl`` such that ``nj`` post-dominates ``nk`` but does not post-dominate
``nl``.  In that case we say *nj is control dependent on ni*: whether ``nj``
executes is decided at the branch ``ni``.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, List, Set

from repro.cfg.dominance import PostDominance
from repro.cfg.graph import ControlFlowGraph
from repro.cfg.ir import CFGNode


class ControlDependence:
    """Control dependence relation for a CFG."""

    def __init__(self, cfg: ControlFlowGraph, post_dominance: PostDominance = None):
        self.cfg = cfg
        self.post_dominance = post_dominance or PostDominance(cfg)
        #: Maps a branch node id to the set of node ids control dependent on it.
        self._dependents: Dict[int, Set[int]] = {}
        #: Maps a node id to the set of branch node ids it is control dependent on.
        self._controllers: Dict[int, Set[int]] = {}
        self._compute()

    def _compute(self) -> None:
        for node in self.cfg.nodes:
            self._dependents.setdefault(node.node_id, set())
            self._controllers.setdefault(node.node_id, set())
        for branch in self.cfg.nodes:
            successors = self.cfg.successors(branch)
            if len(successors) < 2:
                continue
            for target in self.cfg.nodes:
                if self._is_control_dependent(branch, target, successors):
                    self._dependents[branch.node_id].add(target.node_id)
                    self._controllers[target.node_id].add(branch.node_id)

    def _is_control_dependent(
        self, branch: CFGNode, target: CFGNode, successors: List[CFGNode]
    ) -> bool:
        for first, second in combinations(successors, 2):
            if first.node_id == second.node_id:
                continue
            first_pd = self.post_dominance.post_dominates(first, target)
            second_pd = self.post_dominance.post_dominates(second, target)
            if first_pd != second_pd:
                return True
        return False

    def is_control_dependent(self, controller: CFGNode, dependent: CFGNode) -> bool:
        """``controlD(controller, dependent)``: is ``dependent`` control dependent on ``controller``?"""
        return dependent.node_id in self._dependents[controller.node_id]

    def dependents_of(self, controller: CFGNode) -> FrozenSet[int]:
        """Identifiers of all nodes control dependent on ``controller``."""
        return frozenset(self._dependents[controller.node_id])

    def controllers_of(self, dependent: CFGNode) -> FrozenSet[int]:
        """Identifiers of all branch nodes that ``dependent`` is control dependent on."""
        return frozenset(self._controllers[dependent.node_id])


def compute_control_dependence(cfg: ControlFlowGraph) -> ControlDependence:
    """Convenience constructor for :class:`ControlDependence`."""
    return ControlDependence(cfg)
