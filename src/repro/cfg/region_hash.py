"""Content hashing of CFG suffix regions (cross-version summary cache keys).

A node's *region* is the set of nodes reachable from it (its CFG suffix,
including the node itself).  The cross-version summary cache
(:mod:`repro.symexec.summary_cache`) replays previously executed subtrees
whenever a later program version contains a structurally identical region,
so the region identity must be a pure function of the region's *content* --
node behaviours, edge labels and referenced variables -- and never of the
incidental integer node ids a particular parse happened to assign (an edit
upstream of an unchanged suffix shifts every node id).

:func:`region_signature` therefore renumbers the region by a deterministic
depth-first traversal (successors ordered by edge label) and hashes the
sequence of ``(canonical index, structural key, labelled successor
indices)`` triples.  Two regions receive the same digest iff their IR is
identical up to node renaming; the canonical index maps allow a cached
subtree recorded against one version's node ids to be replayed onto another
version's ids.

Two region granularities are hashed:

* the **suffix region** of a node (everything reachable from it), which
  backs whole-subtree replay -- maximal savings, but an edit anywhere
  downstream changes the digest;
* the **segment** from a node to its immediate post-dominator (exclusive),
  which backs composable partial replay: an edit near the procedure exit
  leaves every upstream segment's digest intact, so the unchanged diamonds
  still replay even though all suffix regions contain the edit.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

from repro.cfg.dominance import PostDominance
from repro.cfg.graph import ControlFlowGraph
from repro.cfg.ir import CFGNode, NodeKind

#: Canonical successor index standing for the segment boundary (the
#: immediate post-dominator, which is *not* part of the segment).
BOUNDARY_INDEX = -1


def _ordered_edges(cfg: ControlFlowGraph, node: CFGNode) -> tuple:
    """Out-edges of ``node`` sorted by label (descending), memoised per CFG.

    Every region containing ``node`` re-walks its out-edges, so an
    unmemoised sort costs O(regions x region size) per CFG.  The memo lives
    on the graph object and assumes the CFG is no longer mutated once
    region hashing starts (the same contract :class:`RegionHashIndex`
    already relies on for its signature memo).
    """
    memo = getattr(cfg, "_region_edge_order", None)
    if memo is None:
        memo = {}
        cfg._region_edge_order = memo
    edges = memo.get(node.node_id)
    if edges is None:
        edges = tuple(
            sorted(cfg.out_edges(node), key=lambda e: e.label, reverse=True)
        )
        memo[node.node_id] = edges
    return edges


@dataclass(frozen=True)
class RegionSignature:
    """The canonical identity of one node's suffix region.

    Attributes:
        root_id: node id of the region root in the owning CFG.
        digest: content hash of the region (hex); equal digests mean the
            regions are structurally identical up to node renumbering.
        nodes: region nodes in canonical (deterministic DFS) order, so
            ``nodes[i]`` is the node with canonical index ``i``.
        index: inverse map, node id -> canonical index.
        used_vars: sorted names of every variable *read* somewhere in the
            region (the symbolic environment restricted to these is what a
            subtree execution can observe).
        write_only_vars: sorted names of variables the region *defines* but
            never reads.  Their entry values cannot influence the subtree,
            but cached summaries store environment deltas relative to the
            recording root -- a write whose value happens to equal the
            root's is indistinguishable from no write, so replay is exact
            only when the entry values of written variables match too.
        decision_vars: sorted names of the variables whose entry values can
            flow into some branch condition of the region -- the backward
            closure of the condition reads through the region's assignments.
            This is the (usually much smaller) environment slice that
            *control decisions* inside the region can observe: a variable
            that is only ever copied into pass-through writes (``alarmOut =
            alarm``) is in ``used_vars`` but not here.  The feasibility
            lookahead fingerprints its walk memo on this slice, which is
            what lets probes that differ only in data-flow the region never
            branches on share one walk.
        boundary_id: for segments, the node id of the immediate
            post-dominator bounding the region (exclusive); ``None`` for
            suffix regions, which extend to the procedure exit.
        features: cheap structural features ``(node_count, branch_count,
            call_count, max_depth)`` where ``max_depth`` is the largest BFS
            distance from the root within the region.  The scheduler's cost
            model buckets these to estimate execution cost for digests it
            has never timed, so they must (and do) cost nothing beyond the
            canonical walk the digest already pays for.
    """

    root_id: int
    digest: str
    nodes: Tuple[CFGNode, ...]
    index: Dict[int, int]
    used_vars: Tuple[str, ...]
    write_only_vars: Tuple[str, ...] = ()
    decision_vars: Tuple[str, ...] = ()
    boundary_id: Optional[int] = None
    features: Tuple[int, ...] = ()

    @property
    def node_ids(self) -> FrozenSet[int]:
        return frozenset(self.index)

    def __len__(self) -> int:
        return len(self.nodes)


def _canonical_order(
    cfg: ControlFlowGraph, root: CFGNode, boundary_id: Optional[int]
) -> Tuple[CFGNode, ...]:
    """Region nodes in deterministic DFS pre-order (boundary excluded).

    Successors are visited in edge-label order -- any fixed order works as
    long as it only depends on labels, which makes the order independent of
    node ids and therefore stable across re-parses and upstream edits.
    """
    order = []
    seen = set()
    stack = [root]
    while stack:
        node = stack.pop()
        if node.node_id in seen:
            continue
        seen.add(node.node_id)
        order.append(node)
        for edge in _ordered_edges(cfg, node):
            if edge.target == boundary_id or edge.target in seen:
                continue
            stack.append(cfg.node(edge.target))
    return tuple(order)


def _signature(
    cfg: ControlFlowGraph, root: CFGNode, boundary_id: Optional[int]
) -> RegionSignature:
    nodes = _canonical_order(cfg, root, boundary_id)
    index = {node.node_id: position for position, node in enumerate(nodes)}
    used = set()
    defined = set()
    condition_reads = set()
    assignment_reads: Dict[str, set] = {}
    items = []
    # A suffix region *is* the reachable set, so every out-edge target is a
    # member and the boundary filter below can be skipped wholesale.
    is_suffix = boundary_id is None
    branch_count = 0
    call_count = 0
    for position, node in enumerate(nodes):
        reads = node.used_variables()
        used.update(reads)
        if node.kind is NodeKind.BRANCH:
            branch_count += 1
            condition_reads.update(reads)
        if node.kind is NodeKind.CALL:
            call_count += 1
            # A call defines every formal from its own argument expression;
            # the per-parameter pairing keeps the decision closure tight.
            for param, arg in zip(node.call_params, node.call_args):
                defined.add(param)
                assignment_reads.setdefault(param, set()).update(arg.variables())
        else:
            for written in node.defined_variables():
                defined.add(written)
                assignment_reads.setdefault(written, set()).update(reads)
        edges = _ordered_edges(cfg, node)
        if is_suffix:
            pairs = [(edge.label, index[edge.target]) for edge in edges]
        else:
            pairs = [
                (edge.label, index.get(edge.target, BOUNDARY_INDEX))
                for edge in edges
                if edge.target in index or edge.target == boundary_id
            ]
        if len(pairs) > 1:
            pairs.sort()
        items.append((position, node.structural_key(), tuple(pairs)))
    digest = hashlib.blake2b(repr(items).encode("utf-8"), digest_size=16).hexdigest()
    # Backward closure of the condition reads through the region's
    # assignments: a variable matters to control flow iff some chain of
    # in-region assignments can carry its value into a branch condition.
    # (Flow-insensitive, so a sound over-approximation of the influencers.)
    decision = set(condition_reads)
    changed = True
    while changed:
        changed = False
        for target, reads in assignment_reads.items():
            if target in decision and not reads <= decision:
                decision |= reads
                changed = True
    # Max BFS distance from the root, over region members only.  Shortest
    # paths (not longest) keep this linear while still separating shallow
    # wide regions from deep chains -- all the cost model needs.
    depths = {root.node_id: 0}
    max_depth = 0
    frontier = [root]
    while frontier:
        next_frontier = []
        for bfs_node in frontier:
            node_depth = depths[bfs_node.node_id]
            for edge in _ordered_edges(cfg, bfs_node):
                if edge.target in depths or edge.target not in index:
                    continue
                depths[edge.target] = node_depth + 1
                if node_depth + 1 > max_depth:
                    max_depth = node_depth + 1
                next_frontier.append(cfg.node(edge.target))
        frontier = next_frontier
    return RegionSignature(
        root_id=root.node_id,
        digest=digest,
        nodes=nodes,
        index=index,
        used_vars=tuple(sorted(used)),
        write_only_vars=tuple(sorted(defined - used)),
        decision_vars=tuple(sorted(decision)),
        boundary_id=boundary_id,
        features=(len(nodes), branch_count, call_count, max_depth),
    )


def region_signature(cfg: ControlFlowGraph, root: CFGNode) -> RegionSignature:
    """Compute the canonical signature of ``root``'s suffix region."""
    return _signature(cfg, root, None)


def segment_signature(
    cfg: ControlFlowGraph, root: CFGNode, boundary: CFGNode
) -> RegionSignature:
    """Signature of the region from ``root`` to ``boundary`` (exclusive).

    ``boundary`` must post-dominate ``root``; edges crossing into it are
    hashed with a reserved marker index so the digest still pins where the
    segment exits, without depending on what lies beyond.
    """
    return _signature(cfg, root, boundary.node_id)


class RegionHashIndex:
    """Per-CFG memo of suffix-region and segment signatures."""

    def __init__(self, cfg: ControlFlowGraph):
        self.cfg = cfg
        self._signatures: Dict[int, RegionSignature] = {}
        self._segments: Dict[int, Optional[RegionSignature]] = {}
        self._post_dominance: Optional[PostDominance] = None

    def signature(self, node: CFGNode) -> RegionSignature:
        cached = self._signatures.get(node.node_id)
        if cached is None:
            cached = region_signature(self.cfg, node)
            self._signatures[node.node_id] = cached
        return cached

    def segment(self, node: CFGNode) -> Optional[RegionSignature]:
        """The node's segment signature, or None when it adds nothing.

        A segment is only useful when the immediate post-dominator exists
        and is not the exit node (otherwise the suffix region already covers
        it).  For ``CALL`` nodes the boundary is the matching
        ``CALL_RETURN``'s successor instead of the immediate post-dominator,
        which makes the segment exactly one *per-procedure call summary*:
        entry environment in, post-return environments out.

        Segments must additionally be **call-balanced**: the engine's replay
        materialises boundary states carrying the root state's call frames
        verbatim, which is only correct when every frame pushed inside the
        segment is popped inside it too.  Segments whose boundary sits at a
        different call depth than the root (or at an unexecuted
        ``CALL_RETURN``, whose pop has not happened yet when the boundary is
        reached) are rejected.
        """
        if node.node_id in self._segments:
            return self._segments[node.node_id]
        result = self._compute_segment(node)
        self._segments[node.node_id] = result
        return result

    def _compute_segment(self, node: CFGNode) -> Optional[RegionSignature]:
        if node.kind is NodeKind.CALL and node.return_node_id is not None:
            return_node = self.cfg.node(node.return_node_id)
            successors = self.cfg.successors(return_node)
            if not successors:
                return None
            boundary = successors[0]
            if boundary.kind is NodeKind.END:
                return None
        else:
            if self._post_dominance is None:
                self._post_dominance = PostDominance(self.cfg)
            boundary = self._post_dominance.immediate_post_dominator(node)
            if boundary is None or boundary.kind is NodeKind.END:
                return None
        if not self._call_balanced(node, boundary):
            return None
        return segment_signature(self.cfg, node, boundary)

    def _call_balanced(self, root: CFGNode, boundary: CFGNode) -> bool:
        """Whether frames pushed between ``root`` and ``boundary`` all pop again.

        The static ``call_depth`` stamped by the flattening builder makes
        this a local check: boundary and root must sit at the same splice
        depth, the boundary must not be a ``CALL_RETURN`` (its pop runs only
        *after* the boundary state is captured), the root must not be one
        either (the state at it still carries the callee's frame), and no
        path inside the segment may escape below the root's depth.
        """
        if boundary.call_depth != root.call_depth:
            return False
        if boundary.kind is NodeKind.CALL_RETURN or root.kind is NodeKind.CALL_RETURN:
            return False
        for region_node in _canonical_order(self.cfg, root, boundary.node_id):
            if region_node.kind is NodeKind.END:
                # Reachable only through assertion-failure escapes, which
                # terminate execution at the ERROR node without popping;
                # the END node itself is never part of a captured state.
                continue
            if region_node.call_depth < root.call_depth:
                return False
        return True

    def all_digests(self) -> FrozenSet[str]:
        """Digests of every node's suffix region and segment (invalidation)."""
        digests = set()
        for node in self.cfg.nodes:
            digests.add(self.signature(node).digest)
            segment = self.segment(node)
            if segment is not None:
                digests.add(segment.digest)
        return frozenset(digests)
