"""Telemetry benchmark (ours, not a paper table): overhead + silence + trace.

Three legs, written to ``BENCH_obs.json``:

* **overhead** -- the ASW history sweep (serial, both legs) timed with
  telemetry off and on, min-of-3 each so a loaded CI machine's scheduling
  noise does not masquerade as telemetry cost.  Gated on
  ``enabled <= disabled * 1.05 + 0.05s``: the 5% relative budget from the
  ISSUE plus a small absolute epsilon, because at sub-second sweep times a
  single scheduler preemption is itself worth several percent.
* **differential** -- telemetry off vs on must produce identical distinct
  path conditions and identical per-version leg counters on every
  artifact history (ASW/WBS/OAE, serial -- the serial pipeline is
  counter-deterministic, so any drift here is telemetry changing the run).
* **trace** -- a workers=2 ASW sweep under a recording, exported to
  ``traces/asw_sweep.trace.json`` (Chrome trace-event, loadable in
  chrome://tracing or Perfetto) and ``traces/asw_sweep.trace.jsonl``.
  Reported health: adopted worker processes, shard spans nested under
  their wave's pool span, zero adoption casualties.

``python benchmarks/bench_obs.py --chaos-trace`` additionally writes a
fault-injected trace (``traces/chaos_asw.trace.json``/``.jsonl``) so the
CI chaos job uploads a flame chart with the injected fault events inline.
"""

import argparse
import json
import os
import sys
import time

from repro import faults, obs
from repro.artifacts import asw_artifact, oae_artifact, wbs_artifact
from repro.core.dise import DiSE
from repro.evolution.history import VersionHistoryRunner
from repro.lang.parser import parse_program
from repro.obs.export import write_chrome_trace, write_jsonl
from repro.parallel.shard import ShardConfig, reset_scheduler_cost_model

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "BENCH_obs.json")
TRACES_DIR = os.path.join(os.path.dirname(__file__), "traces")

#: The ISSUE's overhead budget: enabled wall clock may exceed disabled by
#: at most 5%, plus an absolute epsilon for scheduler noise at sub-second
#: sweep times.
OVERHEAD_BUDGET = 1.05
OVERHEAD_EPSILON = 0.05
REPEATS = 3

ARTIFACTS = (asw_artifact, wbs_artifact, oae_artifact)


def _sweep_seconds(enabled):
    """One serial ASW sweep's wall clock, telemetry on or off."""
    reset_scheduler_cost_model()
    previous = obs.install(None)
    try:
        if enabled:
            obs.enable(process="main")
        started = time.perf_counter()
        VersionHistoryRunner(asw_artifact(), workers=1).run()
        return time.perf_counter() - started
    finally:
        obs.install(previous)


def _overhead_leg():
    disabled = min(_sweep_seconds(enabled=False) for _ in range(REPEATS))
    enabled = min(_sweep_seconds(enabled=True) for _ in range(REPEATS))
    ratio = enabled / disabled if disabled else None
    return {
        "disabled_seconds": round(disabled, 6),
        "enabled_seconds": round(enabled, 6),
        "ratio": round(ratio, 4) if ratio is not None else None,
        "budget": OVERHEAD_BUDGET,
        "epsilon_seconds": OVERHEAD_EPSILON,
        "within_budget": enabled <= disabled * OVERHEAD_BUDGET + OVERHEAD_EPSILON,
        "repeats": REPEATS,
    }


#: Leg counters the serial differential pins exactly (timings excluded:
#: they measure the run, they are not outputs of the analysis).
_LEG_KEYS = (
    "states",
    "paths",
    "distinct_path_conditions",
    "decisions",
    "replayed_paths",
    "replayed_segments",
    "cache_hits",
    "cache_misses",
    "cache_stores",
    "generalized_call_hits",
    "generalized_call_stores",
    "instantiated_paths",
)


def _fingerprint(report):
    rows = []
    for row in report.versions:
        entry = {
            "version": row.version,
            "changed_nodes": row.changed_nodes,
            "affected_nodes": row.affected_nodes,
            "dise_pcs": row.dise_distinct_pcs,
            "full_pcs": row.full_distinct_pcs,
        }
        for leg_name in ("dise", "full"):
            leg = getattr(row, leg_name)
            if leg is not None:
                entry.update({f"{leg_name}.{key}": leg[key] for key in _LEG_KEYS})
        rows.append(entry)
    return rows


def _differential_leg():
    rows = {}
    for factory in ARTIFACTS:
        artifact = factory()
        previous = obs.install(None)
        try:
            plain = VersionHistoryRunner(factory(), workers=1).run()
            with obs.recording(f"{artifact.name}-diff"):
                recorded = VersionHistoryRunner(factory(), workers=1).run()
        finally:
            obs.install(previous)
        plain_rows, recorded_rows = _fingerprint(plain), _fingerprint(recorded)
        rows[artifact.name] = {
            "versions": len(plain_rows),
            "pcs_match": all(
                a["dise_pcs"] == b["dise_pcs"] and a["full_pcs"] == b["full_pcs"]
                for a, b in zip(plain_rows, recorded_rows)
            ),
            "counters_match": plain_rows == recorded_rows,
        }
    return rows


def _trace_leg():
    os.makedirs(TRACES_DIR, exist_ok=True)
    reset_scheduler_cost_model()
    previous = obs.install(None)
    try:
        with obs.recording("asw-sweep", artifact="ASW", workers=2) as recorder:
            VersionHistoryRunner(asw_artifact(), workers=2).run()
    finally:
        obs.install(previous)
    chrome_path = os.path.join(TRACES_DIR, "asw_sweep.trace.json")
    jsonl_path = os.path.join(TRACES_DIR, "asw_sweep.trace.jsonl")
    chrome_events = write_chrome_trace(
        recorder, chrome_path, metadata={"benchmark": "bench_obs", "artifact": "ASW"}
    )
    jsonl_lines = write_jsonl(recorder, jsonl_path)
    shard_spans = [span for span in recorder.spans if span.name == "shard.run"]
    with open(chrome_path, "r", encoding="utf-8") as handle:
        loadable = isinstance(json.load(handle).get("traceEvents"), list)
    return {
        "spans": len(recorder.spans),
        "events": len(recorder.events),
        "processes": recorder.processes(),
        "worker_processes": sorted({span.process for span in shard_spans}),
        "shard_spans": len(shard_spans),
        "shard_spans_under_pool": all(
            span.parent is not None and span.parent.name == "parallel.pool"
            for span in shard_spans
        ),
        "adopt_skipped": recorder.adopt_skipped,
        "chrome_events": chrome_events,
        "chrome_loadable": loadable,
        "jsonl_lines": jsonl_lines,
        "chrome_path": os.path.relpath(chrome_path, os.path.dirname(__file__)),
        "jsonl_path": os.path.relpath(jsonl_path, os.path.dirname(__file__)),
    }


def run_obs_benchmarks():
    report = {
        "overhead": _overhead_leg(),
        "differential": _differential_leg(),
        "trace": _trace_leg(),
    }
    with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def write_chaos_trace():
    """A fault-injected workers=2 ASW trace for the CI chaos job's artifacts.

    The injected schedule (crashes + corrupt frames) exercises both fault
    event channels: worker-side events riding shard envelopes home and
    parent-side failure attribution for shards whose process died.
    """
    os.makedirs(TRACES_DIR, exist_ok=True)
    reset_scheduler_cost_model()
    artifact = asw_artifact()
    history = artifact.history()
    programs = [parse_program(source) for _, _, _, source in history]
    plan = faults.plan_from_env(default="seed:6,crash:0.3,corrupt:0.3")
    config = ShardConfig(cold_split_depth=1, min_shards=1, retry_backoff_seconds=0.01)
    with obs.recording("chaos-asw", artifact=artifact.name, chaos=True) as recorder:
        with faults.injected(plan):
            for base, modified in zip(programs, programs[1:]):
                DiSE(
                    base,
                    modified,
                    procedure_name=artifact.procedure_name,
                    workers=2,
                    parallel_config=config,
                ).run()
    chrome_path = os.path.join(TRACES_DIR, "chaos_asw.trace.json")
    jsonl_path = os.path.join(TRACES_DIR, "chaos_asw.trace.jsonl")
    write_chrome_trace(recorder, chrome_path, metadata={"benchmark": "chaos", "artifact": "ASW"})
    write_jsonl(recorder, jsonl_path)
    fault_events = [e for e in recorder.events if e["category"] in ("fault", "shard")]
    print(
        f"chaos trace: {len(recorder.spans)} spans, {len(fault_events)} fault/shard "
        f"events, processes={recorder.processes()} -> {chrome_path}"
    )
    return chrome_path


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--chaos-trace",
        action="store_true",
        help="only write the fault-injected trace artifact (CI chaos job)",
    )
    args = parser.parse_args(argv)
    if args.chaos_trace:
        write_chaos_trace()
        return 0
    report = run_obs_benchmarks()
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
