"""Ablation study (ours): the contribution of each DiSE ingredient.

Not a paper table -- DESIGN.md calls out the design choices this reproduction
had to make explicit, and this benchmark quantifies them on the motivating
example and one WBS version:

* ``no pruning``           -- directed execution degenerates to full SE;
* ``no reset``             -- skipping ResetUnExploredSet misses affected sequences;
* ``no rule (4)``          -- skipping the reaching-definitions rule shrinks AWN;
* ``strict paper rules``   -- without the forward write closure, changes hidden
                              behind intermediate variables stop propagating;
* ``complete covered paths`` -- the extension that reports a path condition for
                              every covered affected-node sequence.
"""

from conftest import emit

from repro.artifacts import wbs_artifact
from repro.artifacts.simple import update_base_program, update_modified_program
from repro.core.dise import DiSE


CONFIGURATIONS = [
    ("default", {}),
    ("no pruning", {"enable_pruning": False}),
    ("no reset", {"enable_reset": False}),
    ("no rule (4)", {"apply_rule4": False}),
    ("strict paper rules", {"forward_writes": False}),
    ("complete covered paths", {"complete_covered_paths": True}),
]


def run_ablation():
    results = []
    wbs = wbs_artifact()
    subjects = [
        ("update §2.2", update_base_program(), update_modified_program(), "update"),
        ("WBS v5", wbs.base_program(), wbs.version_program("v5"), wbs.procedure_name),
    ]
    for subject_name, base, modified, procedure in subjects:
        for config_name, overrides in CONFIGURATIONS:
            result = DiSE(base, modified, procedure_name=procedure, **overrides).run()
            results.append(
                (
                    subject_name,
                    config_name,
                    result.affected_node_count,
                    result.states_explored,
                    len(result.path_conditions),
                )
            )
    return results


def render(results):
    lines = ["Ablation: affected nodes / states explored / path conditions"]
    header = f"{'subject':<14} {'configuration':<24} {'affected':>8} {'states':>8} {'PCs':>6}"
    lines.append(header)
    lines.append("-" * len(header))
    for subject, config, affected, states, conditions in results:
        lines.append(f"{subject:<14} {config:<24} {affected:>8} {states:>8} {conditions:>6}")
    return "\n".join(lines)


def test_ablation(run_once):
    results = run_once(run_ablation)
    emit("ablation", render(results))
    by_key = {(subject, config): (affected, states, conditions)
              for subject, config, affected, states, conditions in results}
    # pruning is what gives DiSE its savings
    assert by_key[("update §2.2", "no pruning")][2] == 24
    assert by_key[("update §2.2", "default")][2] == 8
    # disabling the reset never increases coverage
    assert by_key[("update §2.2", "no reset")][2] <= by_key[("update §2.2", "default")][2]
    # the completion extension only ever adds path conditions
    assert by_key[("update §2.2", "complete covered paths")][2] >= 8
