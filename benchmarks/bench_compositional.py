"""Compositional (generalised call summary) benchmark (ours, not a paper table).

Exercises the fresh-formal callee summaries end to end and writes
``BENCH_compositional.json``.  Hard gates (enforced here, re-checked
against the baseline JSON by ``run_all.py``):

* **call-site-count independence** -- after running an artifact's base
  version over a shared cache, re-running a *variant with one extra call
  site* to an unchanged callee records zero new generalised entries: one
  ``"call"``-kind entry per callee serves every site, however many there
  are.
* **cross-caller replay** -- running the cross-caller pair (two distinct
  programs sharing one callee, see
  :func:`repro.artifacts.interproc.cross_caller_pair`) in sequence over
  one cache, the second program must replay a generalised summary the
  first recorded (``generalized_call_hits >= 1``) without recording any
  of its own (``generalized_call_stores == 0``).
* **instantiated exactness** -- on every ASW-CALLS/FCS version the
  shared-cache history runner's directed and full legs emit exactly the
  distinct path conditions of cold per-version native runs, serially and
  at ``workers=2``.

The report also carries the corpus hit rate (generalised hits over
hits + stores across both histories), which ``run_all.py`` prints in its
summary table.
"""

import json
import os
import time

from repro.artifacts import cross_caller_pair, interproc_artifacts
from repro.core.dise import DiSE
from repro.evolution.history import VersionHistoryRunner
from repro.lang.parser import parse_program
from repro.lang.validate import validate_program
from repro.parallel.shard import warm_pool
from repro.solver.core import ConstraintSolver
from repro.symexec.engine import symbolic_execute
from repro.symexec.summary_cache import SummaryCache

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "BENCH_compositional.json")

WORKERS = int(os.environ.get("REPRO_PARALLEL_WORKERS", "2"))

#: One extra call site to an *unchanged* callee, per artifact.  The callee's
#: content digest is untouched, so the extra site must replay the existing
#: generalised entry instead of recording anything.
EXTRA_CALL_SITE = {
    "ASW-CALLS": (
        "    d = check_pressure(f1, f2);\n",
        "    d = check_pressure(f1, f2);\n    d = check_pressure(f2, f1);\n",
    ),
    "FCS": (
        "    yaw = sensor_vote(c1, c2, c3);\n",
        "    yaw = sensor_vote(c1, c2, c3);\n    yaw = sensor_vote(a1, b2, c3);\n",
    ),
}


def _distinct_pcs(result):
    return tuple(sorted(map(str, result.summary.distinct_path_conditions())))


def _site_independence(artifact):
    """Base run, then a variant with one more call site, over one cache."""
    old, new = EXTRA_CALL_SITE[artifact.name]
    assert old in artifact.base_source, f"{artifact.name}: call-site anchor moved"
    base_program = parse_program(artifact.base_source)
    variant_program = parse_program(artifact.base_source.replace(old, new))
    validate_program(variant_program)

    cache = SummaryCache()
    solver = ConstraintSolver()
    symbolic_execute(
        base_program,
        procedure_name=artifact.procedure_name,
        solver=solver,
        summary_cache=cache,
    )
    before = cache.entries_per_callee()
    variant = symbolic_execute(
        variant_program,
        procedure_name=artifact.procedure_name,
        solver=solver,
        summary_cache=cache,
    )
    after = cache.entries_per_callee()
    native = symbolic_execute(
        variant_program,
        procedure_name=artifact.procedure_name,
        solver=ConstraintSolver(),
    )
    return {
        "callee_entries_before": before,
        "callee_entries_after": after,
        "added_entries": sum(after.values()) - sum(before.values()),
        "variant_call_stores": variant.statistics.generalized_call_stores,
        "variant_call_hits": variant.statistics.generalized_call_hits,
        "variant_pcs_match": _distinct_pcs(variant) == _distinct_pcs(native),
    }


def _cold_oracle_pcs(artifact, history):
    """Per-version distinct PCs from cold (uncached) native runs."""
    oracles = {}
    for (prev_name, _, _, prev_prog), (name, _, _, prog) in zip(history, history[1:]):
        dise_result = DiSE(
            prev_prog,
            prog,
            procedure_name=artifact.procedure_name,
            solver=ConstraintSolver(),
        ).run()
        full_result = symbolic_execute(
            prog,
            procedure_name=artifact.procedure_name,
            solver=ConstraintSolver(),
        )
        oracles[name] = (
            tuple(
                sorted(
                    map(str, dise_result.execution.summary.distinct_path_conditions())
                )
            ),
            _distinct_pcs(full_result),
        )
    return oracles


def _generalized_totals(report):
    totals = {
        "hits": 0,
        "stores": 0,
        "fallbacks": 0,
        "instantiated_paths": 0,
    }
    legs = [report.seed] if report.seed else []
    for row in report.versions:
        legs.append(row.dise)
        if row.full:
            legs.append(row.full)
    for leg in legs:
        totals["hits"] += leg["generalized_call_hits"]
        totals["stores"] += leg["generalized_call_stores"]
        totals["fallbacks"] += leg["generalized_call_fallbacks"]
        totals["instantiated_paths"] += leg["instantiated_paths"]
    attempts = totals["hits"] + totals["stores"]
    totals["hit_rate"] = round(totals["hits"] / attempts, 4) if attempts else None
    return totals


def _history_entry(artifact):
    history = [
        (name, description, changes, parse_program(source))
        for name, description, changes, source in artifact.history()
    ]
    oracles = _cold_oracle_pcs(artifact, history)

    started = time.perf_counter()
    serial_report = VersionHistoryRunner(artifact).run()
    serial_seconds = time.perf_counter() - started

    warm_pool(WORKERS)
    started = time.perf_counter()
    parallel_report = VersionHistoryRunner(artifact, workers=WORKERS).run()
    parallel_seconds = time.perf_counter() - started

    rows = []
    for serial_row, parallel_row in zip(serial_report.versions, parallel_report.versions):
        oracle_dise, oracle_full = oracles[serial_row.version]
        rows.append(
            {
                "version": serial_row.version,
                "dise_pcs_match": serial_row.dise_distinct_pcs == oracle_dise,
                "full_pcs_match": serial_row.full_distinct_pcs == oracle_full,
                "parallel_dise_pcs_match": parallel_row.dise_distinct_pcs == oracle_dise,
                "parallel_full_pcs_match": parallel_row.full_distinct_pcs == oracle_full,
                "generalized_call_hits": serial_row.dise["generalized_call_hits"]
                + (serial_row.full or {}).get("generalized_call_hits", 0),
                "instantiated_paths": serial_row.dise["instantiated_paths"]
                + (serial_row.full or {}).get("instantiated_paths", 0),
            }
        )
    return {
        "procedure": artifact.procedure_name,
        "site_independence": _site_independence(artifact),
        "versions": rows,
        "generalized": _generalized_totals(serial_report),
        "entries_per_callee": serial_report.cache.get("entries_per_callee", {}),
        "serial_seconds": round(serial_seconds, 6),
        "parallel": {"workers": WORKERS, "seconds": round(parallel_seconds, 6)},
    }


def _cross_caller_entry():
    artifact_a, artifact_b = cross_caller_pair()
    program_a = parse_program(artifact_a.base_source)
    program_b = parse_program(artifact_b.base_source)
    validate_program(program_a)
    validate_program(program_b)
    cache = SummaryCache()
    solver = ConstraintSolver()
    result_a = symbolic_execute(
        program_a,
        procedure_name=artifact_a.procedure_name,
        solver=solver,
        summary_cache=cache,
    )
    result_b = symbolic_execute(
        program_b,
        procedure_name=artifact_b.procedure_name,
        solver=solver,
        summary_cache=cache,
    )
    native_b = symbolic_execute(
        program_b,
        procedure_name=artifact_b.procedure_name,
        solver=ConstraintSolver(),
    )
    return {
        "a_call_stores": result_a.statistics.generalized_call_stores,
        "b_call_hits": result_b.statistics.generalized_call_hits,
        "b_call_stores": result_b.statistics.generalized_call_stores,
        "entries_per_callee": cache.entries_per_callee(),
        "b_pcs_match": _distinct_pcs(result_b) == _distinct_pcs(native_b),
    }


def run_compositional_benchmarks():
    report = {}
    for artifact in interproc_artifacts():
        entry = _history_entry(artifact)
        report[artifact.name] = entry

        # -- hard gates ------------------------------------------------------
        independence = entry["site_independence"]
        if independence["added_entries"] != 0 or independence["variant_call_stores"] != 0:
            raise AssertionError(
                f"{artifact.name}: extra call site recorded new generalised "
                f"entries ({independence['added_entries']} added, "
                f"{independence['variant_call_stores']} stored)"
            )
        if not independence["variant_pcs_match"]:
            raise AssertionError(
                f"{artifact.name}: extra-call-site variant diverged from native"
            )
        for row in entry["versions"]:
            for gate in (
                "dise_pcs_match",
                "full_pcs_match",
                "parallel_dise_pcs_match",
                "parallel_full_pcs_match",
            ):
                if not row[gate]:
                    raise AssertionError(
                        f"{artifact.name}/{row['version']}: {gate} failed -- "
                        f"instantiated replay diverged from the cold native run"
                    )
        if entry["generalized"]["hits"] < 1:
            raise AssertionError(
                f"{artifact.name}: history never replayed a generalised summary"
            )

    cross = _cross_caller_entry()
    report["cross_caller"] = cross
    if cross["b_call_hits"] < 1 or cross["b_call_stores"] != 0:
        raise AssertionError(
            f"cross-caller pair: program B hit {cross['b_call_hits']} / stored "
            f"{cross['b_call_stores']} generalised entries (want >=1 / 0)"
        )
    if not cross["b_pcs_match"]:
        raise AssertionError("cross-caller pair: program B diverged from native")

    with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


if __name__ == "__main__":
    result = run_compositional_benchmarks()
    for name, entry in result.items():
        if name == "cross_caller":
            print(
                f"cross_caller: b_hits={entry['b_call_hits']} "
                f"b_stores={entry['b_call_stores']} pcs_match={entry['b_pcs_match']}"
            )
        else:
            print(
                f"{name}: added_entries={entry['site_independence']['added_entries']} "
                f"hit_rate={entry['generalized']['hit_rate']} "
                f"entries_per_callee={entry['entries_per_callee']}"
            )
