"""Parallel exploration benchmark (ours, not a paper table).

Two legs per artifact history, written to ``BENCH_parallel.json``:

* **sweep** -- full symbolic execution of every history version, three
  ways: the plain serial engine (``workers=1``, today's default), a
  *control* serial run given the same kind of ephemeral summary cache the
  pipeline uses (attributes how much of the win is caching/dedup rather
  than worker concurrency), and the sharded frontier pipeline
  (``workers=N``, N from ``REPRO_PARALLEL_WORKERS``, default 4; CI runs
  2).  All legs are wall-clocked end to end and the distinct path
  conditions of every version must match exactly -- the speedup is only
  meaningful because the output is pinned identical.
* **warm_resume** -- a cold :class:`VersionHistoryRunner` run that dumps
  the :class:`~repro.parallel.store.PersistentSummaryStore`, followed by a
  run resuming from that store with fresh caches.  The resumed run's seed
  leg must replay at least 30% of its paths from the store (in CI the
  store file itself is cached between jobs, so the *first* run of a job
  is already warm).

Gating: distinct-PC equality, the warm-resume floor, and the wall-clock
speedup floor (>= 1.5x on at least one artifact history) are all hard
gates.  The speedup gate is an absolute floor rather than a
baseline-relative one because wall clock is hardware-dependent; it holds
even on a single-core box because ASW's win is algorithmic, not
core-count-bound (workers solve subtrees prefix-free and content-keyed
shard dedup collapses repeated frames).  The JSON records every
artifact's measured numbers, including the ones where process overhead
wins.
"""

import json
import os

from repro.artifacts import all_artifacts
from repro.evolution.history import VersionHistoryRunner
from repro.lang.parser import parse_program
from repro.parallel.shard import warm_pool
from repro.parallel.store import PersistentSummaryStore
from repro.symexec.engine import symbolic_execute
from repro.symexec.summary_cache import SummaryCache

import time

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "BENCH_parallel.json")
STORE_DIR = os.path.join(os.path.dirname(__file__), "results", "parallel_store")

WORKERS = int(os.environ.get("REPRO_PARALLEL_WORKERS", "4"))
REUSE_FLOOR = 0.30
SPEEDUP_FLOOR = 1.5


def _cpus():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _distinct(result):
    return sorted(str(c) for c in result.summary.distinct_path_conditions())


def _sweep(artifact, workers):
    """Full SE of every history version; serial vs parallel wall clock."""
    programs = [
        (name, parse_program(source)) for name, _, _, source in artifact.history()
    ]
    started = time.perf_counter()
    serial = [
        symbolic_execute(program, procedure_name=artifact.procedure_name)
        for _, program in programs
    ]
    serial_seconds = time.perf_counter() - started

    # Control leg: serial, but with the same kind of per-run ephemeral
    # summary cache the parallel pipeline creates.  The gap between this
    # and plain serial is the caching/dedup share of the win; the gap to
    # the parallel leg is what the worker pool itself contributes.
    started = time.perf_counter()
    control = [
        symbolic_execute(
            program,
            procedure_name=artifact.procedure_name,
            summary_cache=SummaryCache(),
        )
        for _, program in programs
    ]
    control_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel = [
        symbolic_execute(program, procedure_name=artifact.procedure_name, workers=workers)
        for _, program in programs
    ]
    parallel_seconds = time.perf_counter() - started

    pcs_match = all(
        _distinct(s) == _distinct(p) == _distinct(c)
        for s, p, c in zip(serial, parallel, control)
    )
    return {
        "versions": len(programs),
        "serial_seconds": round(serial_seconds, 6),
        "serial_cached_seconds": round(control_seconds, 6),
        "parallel_seconds": round(parallel_seconds, 6),
        "speedup": round(serial_seconds / parallel_seconds, 4) if parallel_seconds else None,
        "speedup_vs_cached": round(control_seconds / parallel_seconds, 4)
        if parallel_seconds
        else None,
        "pcs_match": pcs_match,
        "distinct_path_conditions": [len(_distinct(s)) for s in serial],
        "shards": sum(r.parallel.shards for r in parallel if r.parallel is not None),
        "replayed_paths": sum(r.statistics.replayed_paths for r in parallel),
        "paths": sum(len(r.summary) for r in parallel),
    }


def _history_pcs(report):
    return {
        row.version: [list(row.dise_distinct_pcs), list(row.full_distinct_pcs)]
        for row in report.versions
    }


def _warm_resume(artifact):
    """Cold history run + store dump, then resume from the store."""
    os.makedirs(STORE_DIR, exist_ok=True)
    store_path = os.path.join(STORE_DIR, f"{artifact.name.lower()}_store.json")
    store = PersistentSummaryStore(store_path)
    preexisting = store.entry_count() or 0

    first = VersionHistoryRunner(artifact, store_path=store_path).run()
    resumed = VersionHistoryRunner(artifact, store_path=store_path).run()

    seed = resumed.seed or {}
    seed_paths = seed.get("paths", 0)
    seed_reuse = (
        round(seed.get("replayed_paths", 0) / seed_paths, 4) if seed_paths else None
    )
    return {
        "store_path": os.path.relpath(store_path, os.path.dirname(__file__)),
        "store_entries_preexisting": preexisting,
        "store_loaded_first": first.cache.get("store_loaded", 0),
        "store_loaded_resumed": resumed.cache.get("store_loaded", 0),
        "store_skipped_first": first.cache.get("store_skipped", 0),
        "store_skipped_resumed": resumed.cache.get("store_skipped", 0),
        "seed_path_reuse": seed_reuse,
        "first_seconds": round(first.elapsed_seconds, 6),
        "resumed_seconds": round(resumed.elapsed_seconds, 6),
        "pcs_match": _history_pcs(first) == _history_pcs(resumed),
    }


def run_parallel_benchmarks(workers=None):
    workers = workers or WORKERS
    warm_pool(workers)  # pay the fork cost before the timed region
    report = {"workers": workers, "cpus": _cpus()}
    for artifact in all_artifacts():
        report[artifact.name] = {
            "sweep": _sweep(artifact, workers),
            "warm_resume": _warm_resume(artifact),
        }
    with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def test_parallel_benchmark(run_once):
    report = run_once(run_parallel_benchmarks)
    print()
    speedups = {}
    for name in ("ASW", "WBS", "OAE"):
        rows = report[name]
        sweep, warm = rows["sweep"], rows["warm_resume"]
        speedups[name] = sweep["speedup"]
        print(
            f"{name}: speedup={sweep['speedup']}x ({sweep['serial_seconds']:.2f}s -> "
            f"{sweep['parallel_seconds']:.2f}s, cached-serial control "
            f"{sweep['serial_cached_seconds']:.2f}s, {sweep['shards']} shards) "
            f"warm seed reuse={warm['seed_path_reuse']}"
        )
        # Hard gates: identical output, the pool actually used (shards
        # deferred AND worker summaries replayed -- a speedup produced by
        # caching alone with an idle pool must not pass), and warm resume
        # actually reuses.
        assert sweep["pcs_match"], f"{name}: parallel diverged from serial"
        assert sweep["shards"] > 0, f"{name}: no frontier frames were sharded"
        assert sweep["replayed_paths"] > 0, f"{name}: no worker summary was replayed"
        assert warm["pcs_match"], f"{name}: store resume changed results"
        # A healthy store loses nothing: every dumped entry must load back.
        assert warm["store_skipped_first"] == 0, (
            f"{name}: warm resume silently dropped {warm['store_skipped_first']} entries"
        )
        assert warm["store_skipped_resumed"] == 0, (
            f"{name}: warm resume silently dropped {warm['store_skipped_resumed']} entries"
        )
        assert warm["seed_path_reuse"] is not None
        assert warm["seed_path_reuse"] >= REUSE_FLOOR, (
            f"{name}: warm resume replayed only {warm['seed_path_reuse']:.0%}"
        )
    # Wall-clock gate: the pipeline must beat plain serial on at least one
    # artifact history (ASW's deep alarm-guard prefixes are where sharding
    # pays; WBS/OAE are small enough that process overhead can win on
    # low-core boxes, which the JSON records honestly).
    assert max(speedups.values()) >= SPEEDUP_FLOOR, (
        f"no artifact reached {SPEEDUP_FLOOR}x: {speedups}"
    )
    assert os.path.exists(RESULTS_PATH)


if __name__ == "__main__":
    print(json.dumps(run_parallel_benchmarks(), indent=2, sort_keys=True))
