"""Parallel exploration benchmark (ours, not a paper table).

Three legs per artifact history, written to ``BENCH_parallel.json``:

* **sweep** -- incremental re-analysis of a version history: the base
  version is analysed once untimed (the incremental premise -- a prior
  version has always been analysed), then every later version is fully
  symbolically executed, three ways.  *Plain serial* re-analyses each
  version from scratch (``workers=1``, no cache: the no-subsystem
  baseline).  *Pipeline serial* (``workers=1``) and *pipeline parallel*
  (``workers=N``) both run the parallel subsystem's configuration: one
  summary cache shared across the history, the parallel leg adding the
  cost-model scheduler and the worker pool.  Every leg is wall-clocked
  (best of ``REPS``; ``SMALL_REPS`` for histories under ``SMALL_SECONDS``,
  whose floors sit near 1.0x where jitter would dominate a best-of-3)
  and the distinct path conditions of every version must match across
  all legs -- the speedup is only meaningful because the output is
  pinned identical.
* **directed** -- a DiSE sweep over the same history (shared cache,
  ``workers=N``): the directed parallel results must match a serial DiSE
  sweep version-for-version, and on WBS and OAE the chained collection
  waves must produce **zero** strategy-token-miss fallbacks to native
  exploration.  ASW's directed sweeps produce cross-version token misses
  even fully serial (a later version's directed strategy legitimately
  diverges from the token a historical entry was recorded under), so its
  gate is no-degradation instead: the parallel sweep must replay at least
  as many paths as the serial sweep, with both legs' miss counts recorded.
* **warm_resume** -- a cold :class:`VersionHistoryRunner` run that dumps
  the :class:`~repro.parallel.store.PersistentSummaryStore`, followed by
  a run resuming from that store with fresh caches.  The resumed run's
  seed leg must replay at least 30% of its paths from the store.
* **warm_start** -- the persistent *cost model* raced against its own
  absence.  A teach run learns digest/feature estimates and fence
  overheads, which are persisted to a **model-only** store (no
  summaries -- the leg isolates scheduling, not cache warmth).  Then the
  base version is analysed from a completely cold cache twice: once with
  a freshly reset model (the model-less fresh process) and once with a
  freshly reset model that adopted the persisted state.  Resetting the
  process-global model between reps reproduces fresh-process scheduling
  state in-process; CI additionally runs the two-real-process variant
  via ``bench_warm_scheduler.py``.  On ASW the adopted model must win
  the wall clock *and* report strictly fewer first-wave ship/inline
  misestimates (a cold first wave dispatches every shard blind).

Gating: distinct-PC equality on every version of every artifact, the
directed token-miss pins above, the warm-resume floor, the ASW
warm-start win, and *per-artifact* wall-clock floors: the pipeline must never lose to plain serial (WBS and
OAE >= 1.0x) and must keep ASW's algorithmic win (>= 4.2x).  The
scheduler earns the small-artifact floors by *declining* to ship: its
run-level gate learns from the untimed base run that the whole procedure
costs less than one pool fence and keeps the sweep inline, so the floors
hold even on a single-core box.  The JSON records every artifact's
measured numbers either way.
"""

import json
import os
import time

from repro.artifacts import all_artifacts
from repro.core.dise import DiSE
from repro.evolution.history import VersionHistoryRunner
from repro.lang.parser import parse_program
from repro.parallel.shard import reset_scheduler_cost_model, warm_pool
from repro.parallel.store import PersistentSummaryStore
from repro.symexec.engine import symbolic_execute
from repro.symexec.summary_cache import SummaryCache

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "BENCH_parallel.json")
STORE_DIR = os.path.join(os.path.dirname(__file__), "results", "parallel_store")

WORKERS = int(os.environ.get("REPRO_PARALLEL_WORKERS", "4"))
REPS = int(os.environ.get("REPRO_BENCH_REPS", "3"))
#: Histories whose plain-serial sweep finishes under this many seconds
#: get SMALL_REPS timing reps instead of REPS: their floors sit near
#: 1.0x, where a single-digit-millisecond scheduling hiccup in a
#: best-of-3 would flip the comparison.
SMALL_SECONDS = 0.2
SMALL_REPS = max(REPS, 7)
REUSE_FLOOR = 0.30
#: Per-artifact wall-clock floors (plain serial seconds / pipeline
#: parallel seconds).  ASW's floor pins the algorithmic win; the small
#: artifacts' floors pin that the scheduler never ships at a loss.
SPEEDUP_FLOORS = {"ASW": 4.2, "WBS": 1.0, "OAE": 1.0}
#: Artifacts whose directed sweeps must report zero strategy-token-miss
#: fallbacks (serial ASW sweeps inherently miss across versions; it is
#: gated on no-degradation instead).
ZERO_MISS_ARTIFACTS = ("WBS", "OAE")
#: Artifact whose warm-start leg is gated (warm wall clock strictly under
#: cold, strictly fewer first-wave misestimates).  The small artifacts'
#: legs are recorded but only PC-pinned: their single-digit-millisecond
#: wall clocks are jitter-dominated even best-of-N.
WARM_START_ARTIFACT = "ASW"
WARM_START_REPS = max(REPS, 5)


def _cpus():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _distinct(result):
    return sorted(str(c) for c in result.summary.distinct_path_conditions())


def _sweep(artifact, workers):
    """Incremental re-analysis of the history; plain vs pipeline wall clock."""
    programs = [
        (name, parse_program(source)) for name, _, _, source in artifact.history()
    ]
    base_program = programs[0][1]
    history = programs[1:]

    def leg_plain():
        results = [
            symbolic_execute(program, procedure_name=artifact.procedure_name)
            for _, program in history
        ]
        return results, None

    def leg_pipeline(leg_workers):
        reset_scheduler_cost_model()
        cache = SummaryCache()
        warm = symbolic_execute(
            base_program,
            procedure_name=artifact.procedure_name,
            summary_cache=cache,
            workers=leg_workers,
        )
        started = time.perf_counter()
        results = [
            symbolic_execute(
                program,
                procedure_name=artifact.procedure_name,
                summary_cache=cache,
                workers=leg_workers,
            )
            for _, program in history
        ]
        return time.perf_counter() - started, results, warm

    # The base analysis is outside every timed region (all legs need the
    # same version analysed for the PC pin; only the pipeline legs carry
    # state out of it).  Timings take the best of REPS runs -- the floors
    # gate ratios near 1.0, where scheduler jitter would otherwise flip
    # the comparison.
    base_plain = symbolic_execute(
        base_program, procedure_name=artifact.procedure_name
    )
    plain_results = None
    plain_seconds = None
    reps = REPS
    for rep in range(SMALL_REPS):
        if rep >= reps:
            break
        started = time.perf_counter()
        results, _ = leg_plain()
        elapsed = time.perf_counter() - started
        if plain_seconds is None or elapsed < plain_seconds:
            plain_seconds = elapsed
            plain_results = results
        if plain_seconds < SMALL_SECONDS:
            reps = SMALL_REPS

    serial_seconds, serial_results, serial_warm = leg_pipeline(1)
    for _ in range(reps - 1):
        elapsed, _, _ = leg_pipeline(1)
        serial_seconds = min(serial_seconds, elapsed)

    parallel_seconds, parallel_results, parallel_warm = leg_pipeline(workers)
    for _ in range(reps - 1):
        elapsed, rep_results, rep_warm = leg_pipeline(workers)
        if elapsed < parallel_seconds:
            parallel_seconds, parallel_results, parallel_warm = (
                elapsed,
                rep_results,
                rep_warm,
            )

    pcs_match = _distinct(base_plain) == _distinct(serial_warm) == _distinct(
        parallel_warm
    ) and all(
        _distinct(p) == _distinct(s) == _distinct(par)
        for p, s, par in zip(plain_results, serial_results, parallel_results)
    )
    timed = [r.parallel for r in parallel_results if r.parallel is not None]
    warm_report = parallel_warm.parallel
    return {
        "versions": len(programs),
        "reps": reps,
        "serial_seconds": round(plain_seconds, 6),
        "pipeline_serial_seconds": round(serial_seconds, 6),
        "parallel_seconds": round(parallel_seconds, 6),
        "speedup": round(plain_seconds / parallel_seconds, 4)
        if parallel_seconds
        else None,
        "speedup_pipeline_serial": round(plain_seconds / serial_seconds, 4)
        if serial_seconds
        else None,
        "pcs_match": pcs_match,
        "distinct_path_conditions": [len(_distinct(base_plain))]
        + [len(_distinct(r)) for r in plain_results],
        "shards_warmup": warm_report.shards if warm_report is not None else 0,
        "shards_timed": sum(r.shards for r in timed),
        "waves": sum(r.waves for r in timed),
        "respeculated_shards": sum(r.respeculated_shards for r in timed),
        "cost_inline": sum(r.cost_inline for r in timed),
        "strategy_token_misses": sum(
            r.statistics.strategy_token_misses for r in parallel_results
        ),
        "replayed_paths": sum(
            r.statistics.replayed_paths for r in parallel_results
        ),
        "paths": sum(len(r.summary) for r in parallel_results),
    }


def _directed(artifact, workers):
    """DiSE over the history: chained shard keys must never miss."""

    def sweep(leg_workers):
        reset_scheduler_cost_model()
        cache = SummaryCache()
        previous = artifact.base_program()
        misses = 0
        shards = 0
        replayed = 0
        pcs = []
        for name in artifact.version_names():
            program = artifact.version_program(name)
            result = DiSE(
                previous,
                program,
                procedure_name=artifact.procedure_name,
                summary_cache=cache,
                workers=leg_workers,
            ).run()
            misses += result.execution.statistics.strategy_token_misses
            replayed += result.execution.statistics.replayed_paths
            if result.execution.parallel is not None:
                shards += result.execution.parallel.shards
            pcs.append(
                sorted(
                    str(c)
                    for c in result.execution.summary.distinct_path_conditions()
                )
            )
            previous = program
        return misses, shards, replayed, pcs

    misses, shards, replayed, pcs = sweep(workers)
    serial_misses, _, serial_replayed, serial_pcs = sweep(1)
    return {
        "strategy_token_misses": misses,
        "strategy_token_misses_serial": serial_misses,
        "replayed_paths": replayed,
        "replayed_paths_serial": serial_replayed,
        "shards": shards,
        "pcs_match": pcs == serial_pcs,
    }


def _history_pcs(report):
    return {
        row.version: [list(row.dise_distinct_pcs), list(row.full_distinct_pcs)]
        for row in report.versions
    }


def _warm_resume(artifact):
    """Cold history run + store dump, then resume from the store."""
    os.makedirs(STORE_DIR, exist_ok=True)
    store_path = os.path.join(STORE_DIR, f"{artifact.name.lower()}_store.json")
    store = PersistentSummaryStore(store_path)
    preexisting = store.entry_count() or 0

    first = VersionHistoryRunner(artifact, store_path=store_path).run()
    resumed = VersionHistoryRunner(artifact, store_path=store_path).run()

    seed = resumed.seed or {}
    seed_paths = seed.get("paths", 0)
    seed_reuse = (
        round(seed.get("replayed_paths", 0) / seed_paths, 4) if seed_paths else None
    )
    return {
        "store_path": os.path.relpath(store_path, os.path.dirname(__file__)),
        "store_entries_preexisting": preexisting,
        "store_loaded_first": first.cache.get("store_loaded", 0),
        "store_loaded_resumed": resumed.cache.get("store_loaded", 0),
        "store_skipped_first": first.cache.get("store_skipped", 0),
        "store_skipped_resumed": resumed.cache.get("store_skipped", 0),
        "seed_path_reuse": seed_reuse,
        "first_seconds": round(first.elapsed_seconds, 6),
        "resumed_seconds": round(resumed.elapsed_seconds, 6),
        "pcs_match": _history_pcs(first) == _history_pcs(resumed),
    }


def _warm_start(artifact, workers):
    """Race a persisted cost model against a cold one on the base version."""
    os.makedirs(STORE_DIR, exist_ok=True)
    store_path = os.path.join(
        STORE_DIR, f"{artifact.name.lower()}_costmodel.json"
    )
    if os.path.exists(store_path):
        # The teach phase below must be this store's only author;
        # a stale model from a previous run would blur the race.
        os.remove(store_path)
    base_program = parse_program(artifact.history()[0][3])

    def analyse():
        started = time.perf_counter()
        result = symbolic_execute(
            base_program,
            procedure_name=artifact.procedure_name,
            summary_cache=SummaryCache(),
            workers=workers,
        )
        return time.perf_counter() - started, result

    # Teach: two cold-cache runs let the model observe every shard it
    # ships blind on the first pass and refine the estimates on the
    # second.  Only the model is persisted -- dumping an empty cache
    # keeps summaries out of the store so the race measures scheduling.
    model = reset_scheduler_cost_model()
    for _ in range(2):
        analyse()
    PersistentSummaryStore(store_path).dump(SummaryCache(), cost_model=model)

    def leg(adopt):
        best_seconds = None
        misestimates = 0
        pcs = None
        adopted = 0
        for _ in range(WARM_START_REPS):
            leg_model = reset_scheduler_cost_model()
            if adopt:
                adopted = PersistentSummaryStore(store_path).load_cost_model_into(
                    leg_model
                )
            elapsed, result = analyse()
            parallel = result.parallel
            # Worst rep, not best: one decision-flip in any rep counts.
            misestimates = max(
                misestimates,
                parallel.first_wave_misestimates if parallel is not None else 0,
            )
            if best_seconds is None or elapsed < best_seconds:
                best_seconds = elapsed
                pcs = _distinct(result)
        return best_seconds, misestimates, pcs, adopted

    cold_seconds, cold_misestimates, cold_pcs, _ = leg(adopt=False)
    warm_seconds, warm_misestimates, warm_pcs, adopted = leg(adopt=True)
    reset_scheduler_cost_model()
    return {
        "store_path": os.path.relpath(store_path, os.path.dirname(__file__)),
        "reps": WARM_START_REPS,
        "costmodel_digests_adopted": adopted,
        "cold_seconds": round(cold_seconds, 6),
        "warm_seconds": round(warm_seconds, 6),
        "speedup": round(cold_seconds / warm_seconds, 4) if warm_seconds else None,
        "cold_first_wave_misestimates": cold_misestimates,
        "warm_first_wave_misestimates": warm_misestimates,
        "pcs_match": cold_pcs == warm_pcs,
    }


def run_parallel_benchmarks(workers=None):
    workers = workers or WORKERS
    warm_pool(workers)  # pay the fork cost before the timed region
    report = {"workers": workers, "cpus": _cpus(), "reps": REPS}
    for artifact in all_artifacts():
        report[artifact.name] = {
            "sweep": _sweep(artifact, workers),
            "directed": _directed(artifact, workers),
            "warm_resume": _warm_resume(artifact),
            "warm_start": _warm_start(artifact, workers),
        }
    reset_scheduler_cost_model()
    with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def test_parallel_benchmark(run_once):
    report = run_once(run_parallel_benchmarks)
    print()
    artifact_names = [a.name for a in all_artifacts()]
    for name in artifact_names:
        rows = report[name]
        sweep, directed, warm = rows["sweep"], rows["directed"], rows["warm_resume"]
        warm_start = rows["warm_start"]
        print(
            f"{name}: speedup={sweep['speedup']}x ({sweep['serial_seconds']:.2f}s -> "
            f"{sweep['parallel_seconds']:.2f}s, pipeline-serial "
            f"{sweep['pipeline_serial_seconds']:.2f}s, "
            f"{sweep['shards_warmup']}+{sweep['shards_timed']} shards, "
            f"{sweep['waves']} waves) directed misses={directed['strategy_token_misses']} "
            f"warm seed reuse={warm['seed_path_reuse']} "
            f"warm-start {warm_start['cold_seconds']:.3f}s -> "
            f"{warm_start['warm_seconds']:.3f}s "
            f"(misestimates {warm_start['cold_first_wave_misestimates']} -> "
            f"{warm_start['warm_first_wave_misestimates']})"
        )
        # Hard gates on every artifact: identical output on every version,
        # the directed token-miss pins, and a lossless store resume.
        assert sweep["pcs_match"], f"{name}: parallel diverged from serial"
        assert directed["pcs_match"], f"{name}: directed parallel diverged"
        if name in ZERO_MISS_ARTIFACTS:
            assert directed["strategy_token_misses"] == 0, (
                f"{name}: directed replay fell back to native exploration "
                f"{directed['strategy_token_misses']} times (stale shard tokens)"
            )
        else:
            # Serial sweeps already miss here (cross-version strategy
            # divergence); the pin is that parallelism loses no replays.
            assert directed["replayed_paths"] >= directed["replayed_paths_serial"], (
                f"{name}: parallel directed sweep replayed "
                f"{directed['replayed_paths']} paths vs "
                f"{directed['replayed_paths_serial']} serially"
            )
        assert warm["pcs_match"], f"{name}: store resume changed results"
        # A healthy store loses nothing: every dumped entry must load back.
        assert warm["store_skipped_first"] == 0, (
            f"{name}: warm resume silently dropped {warm['store_skipped_first']} entries"
        )
        assert warm["store_skipped_resumed"] == 0, (
            f"{name}: warm resume silently dropped {warm['store_skipped_resumed']} entries"
        )
        assert warm["seed_path_reuse"] is not None
        assert warm["seed_path_reuse"] >= REUSE_FLOOR, (
            f"{name}: warm resume replayed only {warm['seed_path_reuse']:.0%}"
        )
        assert warm_start["pcs_match"], (
            f"{name}: adopting a persisted cost model changed results"
        )
    # The warm-start race: a fresh scheduling state that adopted the
    # persisted model must beat the model-less fresh state on wall clock
    # and dispatch its first wave with strictly fewer blind or flipped
    # ship/inline decisions.
    warm_start = report[WARM_START_ARTIFACT]["warm_start"]
    assert warm_start["costmodel_digests_adopted"] > 0, (
        f"{WARM_START_ARTIFACT}: the persisted store carried no digest estimates"
    )
    assert warm_start["warm_seconds"] < warm_start["cold_seconds"], (
        f"{WARM_START_ARTIFACT}: warm start lost the wall clock "
        f"({warm_start['warm_seconds']:.3f}s vs {warm_start['cold_seconds']:.3f}s cold)"
    )
    assert (
        warm_start["warm_first_wave_misestimates"]
        < warm_start["cold_first_wave_misestimates"]
    ), (
        f"{WARM_START_ARTIFACT}: warm first wave misestimated "
        f"{warm_start['warm_first_wave_misestimates']} dispatches vs "
        f"{warm_start['cold_first_wave_misestimates']} cold"
    )
    for name, floor in SPEEDUP_FLOORS.items():
        sweep = report[name]["sweep"]
        # The pool must have been exercised somewhere in the leg (warmup
        # included): a floor met with the parallel subsystem idle would
        # pin nothing about the scheduler.
        assert sweep["shards_warmup"] + sweep["shards_timed"] > 0, (
            f"{name}: no frontier frames were ever sharded"
        )
        assert sweep["replayed_paths"] > 0, f"{name}: nothing was replayed"
        assert sweep["speedup"] >= floor, (
            f"{name}: pipeline speedup {sweep['speedup']}x below the "
            f"{floor}x floor (plain {sweep['serial_seconds']:.3f}s vs "
            f"parallel {sweep['parallel_seconds']:.3f}s)"
        )
    assert os.path.exists(RESULTS_PATH)


if __name__ == "__main__":
    print(json.dumps(run_parallel_benchmarks(), indent=2, sort_keys=True))
