"""§2.2 headline numbers: DiSE vs full symbolic execution on ``update``.

The paper reports 7 affected path conditions versus 21 for full symbolic
execution on its Java variant; the MiniLang re-creation yields 8 versus 24
(same one-third ratio -- DiSE collapses the unaffected BSwitch structure).
"""

from conftest import emit

from repro.artifacts.simple import update_base_program, update_modified_program
from repro.core.dise import compare_dise_with_full
from repro.reporting.tables import render_table2


def compare_motivating_example():
    return compare_dise_with_full(
        update_base_program(),
        update_modified_program(),
        procedure="update",
        version_label="== -> <=",
    )


def test_motivating_example(run_once):
    row = run_once(compare_motivating_example)
    emit("motivating_example", render_table2([row], "update, §2.2"))
    assert row.full_path_conditions == 24
    assert row.dise_path_conditions == 8
    assert row.dise_states < row.full_states
