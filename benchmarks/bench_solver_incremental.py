"""Micro-benchmark for the incremental solver path (ours, not a paper table).

Measures the DiSE hot path -- branch-feasibility checks along a DFS -- in
three workloads and writes ``BENCH_solver.json`` next to this file so future
PRs have a perf trajectory to regress against:

* ``chain``: push a deep constraint prefix once, then probe many sibling
  branch constraints against it (the pure prefix-reuse regime);
* ``update_full``: full symbolic execution of the §2.2 ``update`` method;
* ``update_dise``: the directed run of the motivating example.

Reported per workload: wall clock, solver queries (full solves), incremental
hits, prefix reuses, and the derived ``prefix_reuse_ratio`` /
``incremental_hit_ratio`` / ``checks_per_second``.
"""

import json
import os
import time

from repro.artifacts.simple import update_base_program, update_modified_program
from repro.core.dise import run_dise
from repro.solver.context import SolverContext
from repro.solver.core import ConstraintSolver
from repro.solver.terms import BinaryTerm, IntConst, int_symbol
from repro.symexec.engine import symbolic_execute

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "BENCH_solver.json")

CHAIN_DEPTH = 40
CHAIN_PROBES = 400


def _snapshot(solver):
    stats = solver.statistics
    return (stats.queries, stats.incremental_hits, stats.prefix_reuses)


def _delta(solver, before, elapsed, checks):
    queries, hits, reuses = (now - then for now, then in zip(_snapshot(solver), before))
    total = queries + hits
    return {
        "elapsed_seconds": round(elapsed, 6),
        "checks": checks,
        "solver_queries": queries,
        "incremental_hits": hits,
        "prefix_reuses": reuses,
        "prefix_reuse_ratio": round(reuses / max(1, reuses + queries), 4),
        "incremental_hit_ratio": round(hits / max(1, total), 4),
        "checks_per_second": round(checks / elapsed, 1) if elapsed > 0 else None,
    }


def bench_chain(solver):
    """Deep prefix + many sibling probes: the shape of a DFS branch frontier."""
    xs = [int_symbol(f"v{i}") for i in range(CHAIN_DEPTH)]
    context = SolverContext(solver)
    before = _snapshot(solver)
    started = time.perf_counter()
    for i, symbol in enumerate(xs):
        context.push(BinaryTerm(">", symbol, IntConst(i)))
    checks = 0
    for probe in range(CHAIN_PROBES):
        symbol = xs[probe % CHAIN_DEPTH]
        context.assume_is_satisfiable(BinaryTerm("==", symbol, IntConst(probe + CHAIN_DEPTH)))
        checks += 1
    elapsed = time.perf_counter() - started
    return _delta(solver, before, elapsed, checks)


def bench_update_full(solver):
    before = _snapshot(solver)
    started = time.perf_counter()
    result = symbolic_execute(update_modified_program(), "update", solver=solver)
    elapsed = time.perf_counter() - started
    assert len(result.path_conditions) == 24
    payload = _delta(solver, before, elapsed, result.statistics.states_explored)
    payload["path_conditions"] = len(result.path_conditions)
    return payload, result


def bench_update_dise(solver):
    before = _snapshot(solver)
    started = time.perf_counter()
    result = run_dise(
        update_base_program(), update_modified_program(), procedure="update", solver=solver
    )
    elapsed = time.perf_counter() - started
    assert len(result.path_conditions) == 8
    payload = _delta(solver, before, elapsed, result.states_explored)
    payload["path_conditions"] = len(result.path_conditions)
    return payload, result


def run_solver_benchmarks():
    """Run the three workloads on one shared solver and persist the report."""
    from repro.solver.terms import interned_count

    interned_before = interned_count()
    solver = ConstraintSolver()
    chain = bench_chain(solver)
    full_payload, full_result = bench_update_full(solver)
    dise_payload, dise_result = bench_update_dise(solver)
    report = {
        "chain": chain,
        "update_full": full_payload,
        "update_dise": dise_payload,
        "totals": solver.statistics.as_dict(),
    }
    # Interning is weak, so the table tracks the *live* term population; the
    # delta while the two run results are still referenced is what those
    # runs keep alive, and is stable across runner contexts (other
    # benchmarks' dead terms no longer inflate it).
    report["totals"]["interned_terms"] = interned_count() - interned_before
    del full_result, dise_result
    with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def test_solver_incremental(run_once):
    report = run_once(run_solver_benchmarks)
    print()
    print(json.dumps(report, indent=2, sort_keys=True))
    # The incremental layer must demonstrably carry the load: sibling probes
    # against a shared prefix reuse it, and most chain checks never reach a
    # full solve.
    assert report["chain"]["prefix_reuse_ratio"] > 0.5
    assert report["chain"]["incremental_hit_ratio"] > 0.5
    assert report["update_dise"]["prefix_reuses"] > 0
    assert report["totals"]["interned_terms"] > 0
    assert os.path.exists(RESULTS_PATH)


if __name__ == "__main__":
    print(json.dumps(run_solver_benchmarks(), indent=2, sort_keys=True))
