"""Table 3(a): regression test selection and augmentation for ASW."""

from conftest import emit, table3_reports

from repro.artifacts import asw_artifact
from repro.reporting.tables import render_table3


def run_table3_asw():
    return table3_reports(asw_artifact())


def test_table3_asw(run_once):
    reports = run_once(run_table3_asw)
    emit("table3_asw", render_table3(reports, "ASW"))
    assert len(reports) == 15
    for report in reports:
        assert report.total == report.selected_count + report.added_count
    # output-only changes require no regression tests at all
    assert any(report.total == 0 for report in reports)
