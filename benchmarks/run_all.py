#!/usr/bin/env python
"""Run every benchmark smoke-fast and fail on regression vs checked-in baselines.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py [--list] [--only NAME ...]

Each ``bench_*.py`` module exposes one public ``run_*`` entry point that
returns its report without needing pytest.  This driver invokes them all,
then compares the structural metrics of the JSON-producing benchmarks
(``BENCH_solver.json``, ``BENCH_history.json``) against the values that
were checked in before the run.  Wall-clock times are reported but never
gated on (CI machines vary); counters and ratios are what must not regress:

* solver bench: ``prefix_reuse_ratio`` / ``incremental_hit_ratio`` may drop
  at most ``RATIO_TOLERANCE`` below baseline, path-condition counts must
  match exactly;
* history bench: per-artifact ``summary_reuse_min`` must stay above the
  hard floor and within tolerance of baseline, distinct path-condition
  counts per version must match exactly;
* lookahead bench: per-artifact query/decision reductions must stay above
  the 40% floor (enforced inside the bench) and within tolerance of the
  checked-in baseline, and memoized/baseline path conditions must match;
* parallel bench: ``workers>1`` must match ``workers=1`` distinct path
  conditions exactly (sweep and directed legs), directed WBS/OAE sweeps
  must report zero strategy-token-miss fallbacks, the persistent-store
  warm resume must replay >= 30% of the seed leg, the ASW warm-start
  race must show the persisted cost model beating a cold model on wall
  clock with strictly fewer first-wave misestimates, and every artifact
  history must meet its wall-clock floor (ASW >= 4.2x, WBS/OAE >= 1.0x --
  absolute floors, not baseline-relative: the small-artifact floors pin
  that the cost-model scheduler never ships at a loss);
* compositional bench: adding a call site to an unchanged callee must
  record zero new generalised entries, the cross-caller pair must replay
  (never re-record) the shared callee's summary, and instantiated replay
  must match cold native path conditions on every version, serially and
  at ``workers=2``;
* faults bench: under an injected worker-crash schedule the pool phase
  must salvage >= 50% of shards with unchanged distinct path conditions,
  and two concurrent store writers must lose zero entries;
* obs bench: telemetry overhead on the ASW history sweep must stay within
  the 5% budget, telemetry-off and telemetry-on runs must be bit-identical
  on every artifact history, and the workers=2 trace must merge shard
  spans from the pool with zero adoption casualties.

Every benchmark additionally runs under a telemetry recording and leaves
one trace artifact pair (``traces/<name>.trace.json`` Chrome trace-event +
``traces/<name>.trace.jsonl``) for CI to upload.

Exit status is non-zero when any benchmark raises or any gate fails, so
this file doubles as the CI entry point for the perf ladder.
"""

import argparse
import importlib
import json
import os
import sys
import time
import traceback

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(BENCH_DIR)

for path in (BENCH_DIR, os.path.join(REPO_ROOT, "src")):
    if path not in sys.path:
        sys.path.insert(0, path)

from repro import obs
from repro.obs.export import write_chrome_trace, write_jsonl

#: Where the per-benchmark trace artifacts land (uploaded by CI).
TRACES_DIR = os.path.join(BENCH_DIR, "traces")

#: Allowed absolute drop in a reuse/hit ratio before it counts as a regression.
RATIO_TOLERANCE = 0.10
#: Hard floor for the history benchmark's per-version summary reuse.
REUSE_FLOOR = 0.30

#: module name -> entry-point callable name.
BENCHMARKS = {
    "bench_fig1_testx_tree": "build_figure1",
    "bench_fig2_update_cfg": "build_figure2",
    "bench_fig5_affected_sets": "compute_affected_sets",
    "bench_motivating_example": "compare_motivating_example",
    "bench_table1_directed_trace": "run_directed_with_trace",
    "bench_table2_asw": "run_table2_asw",
    "bench_table2_wbs": "run_table2_wbs",
    "bench_table2_oae": "run_table2_oae",
    "bench_table3_asw": "run_table3_asw",
    "bench_table3_wbs": "run_table3_wbs",
    "bench_table3_oae": "run_table3_oae",
    "bench_ablation": "run_ablation",
    "bench_solver_incremental": "run_solver_benchmarks",
    "bench_version_history": "run_history_benchmarks",
    "bench_lookahead": "run_lookahead_benchmarks",
    "bench_parallel": "run_parallel_benchmarks",
    "bench_interproc": "run_interproc_benchmarks",
    "bench_compositional": "run_compositional_benchmarks",
    "bench_faults": "run_faults_benchmarks",
    "bench_obs": "run_obs_benchmarks",
}

#: The parallel benchmark's worker count for gated runs.  Four matches the
#: acceptance sweep (the cost-model scheduler keeps small artifacts inline,
#: so oversubscribing a 2-vCPU runner is harmless); overridable from the
#: environment.
os.environ.setdefault("REPRO_PARALLEL_WORKERS", "4")


def _load_baseline(filename):
    path = os.path.join(BENCH_DIR, filename)
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _check_solver(baseline, report, failures):
    if baseline is None:
        return
    for workload in ("chain", "update_full", "update_dise"):
        for ratio in ("prefix_reuse_ratio", "incremental_hit_ratio"):
            old = baseline.get(workload, {}).get(ratio)
            new = report.get(workload, {}).get(ratio)
            if old is not None and new is not None and new < old - RATIO_TOLERANCE:
                failures.append(
                    f"solver/{workload}.{ratio}: {new:.3f} regressed below "
                    f"baseline {old:.3f} - {RATIO_TOLERANCE}"
                )
    for workload in ("update_full", "update_dise"):
        old = baseline.get(workload, {}).get("path_conditions")
        new = report.get(workload, {}).get("path_conditions")
        if old is not None and new != old:
            failures.append(f"solver/{workload}.path_conditions: {new} != baseline {old}")


def _check_history(baseline, report, failures):
    for artifact, rows in report.items():
        reuse = rows.get("summary_reuse_min")
        if reuse is None or reuse < REUSE_FLOOR:
            failures.append(f"history/{artifact}: summary_reuse_min {reuse} below {REUSE_FLOOR}")
        if baseline is None or artifact not in baseline:
            continue
        old_rows = baseline[artifact]
        old_reuse = old_rows.get("summary_reuse_min")
        if old_reuse is not None and reuse is not None and reuse < old_reuse - RATIO_TOLERANCE:
            failures.append(
                f"history/{artifact}: summary_reuse_min {reuse:.3f} regressed below "
                f"baseline {old_reuse:.3f} - {RATIO_TOLERANCE}"
            )
        old_versions = {row["version"]: row for row in old_rows.get("versions", [])}
        for row in rows.get("versions", []):
            old_row = old_versions.get(row["version"])
            if old_row is None:
                continue
            for leg in ("dise", "full"):
                old_leg, new_leg = old_row.get(leg), row.get(leg)
                if old_leg is None or new_leg is None:
                    continue
                old_pcs = old_leg.get("distinct_path_conditions")
                new_pcs = new_leg.get("distinct_path_conditions")
                if old_pcs != new_pcs:
                    failures.append(
                        f"history/{artifact}/{row['version']}/{leg}: distinct path "
                        f"conditions {new_pcs} != baseline {old_pcs}"
                    )


#: Hard floors for the parallel benchmark (see bench_parallel.py).  ASW's
#: floor pins the algorithmic win; WBS/OAE pin that the cost-model
#: scheduler never lets the pipeline lose to plain serial.
PARALLEL_SPEEDUP_FLOORS = {"ASW": 4.2, "WBS": 1.0, "OAE": 1.0}
#: Artifacts whose directed sweeps must report zero token-miss fallbacks
#: (ASW's serial directed sweeps miss across versions by construction;
#: bench_parallel.py gates it on no-degradation instead).
PARALLEL_ZERO_MISS = ("WBS", "OAE")
PARALLEL_REUSE_FLOOR = 0.30


def _check_parallel(baseline, report, failures):
    rows_by_artifact = {}
    for artifact in ("ASW", "WBS", "OAE"):
        rows = report.get(artifact)
        if rows is None:
            failures.append(f"parallel/{artifact}: missing from report")
            continue
        rows_by_artifact[artifact] = rows
        sweep, directed, warm = rows["sweep"], rows["directed"], rows["warm_resume"]
        if not sweep.get("pcs_match"):
            failures.append(f"parallel/{artifact}: workers>1 diverged from workers=1")
        if not directed.get("pcs_match"):
            failures.append(
                f"parallel/{artifact}: directed workers>1 diverged from serial"
            )
        if artifact in PARALLEL_ZERO_MISS and directed.get("strategy_token_misses"):
            failures.append(
                f"parallel/{artifact}: directed sweep hit "
                f"{directed['strategy_token_misses']} strategy-token-miss "
                f"fallbacks (expected 0)"
            )
        if not (sweep.get("shards_warmup", 0) + sweep.get("shards_timed", 0)):
            failures.append(f"parallel/{artifact}: no frontier frames were sharded")
        if not sweep.get("replayed_paths"):
            failures.append(f"parallel/{artifact}: no worker summary was replayed")
        if not warm.get("pcs_match"):
            failures.append(f"parallel/{artifact}: store warm resume changed results")
        reuse = warm.get("seed_path_reuse")
        if reuse is None or reuse < PARALLEL_REUSE_FLOOR:
            failures.append(
                f"parallel/{artifact}: warm-resume seed reuse {reuse} below "
                f"{PARALLEL_REUSE_FLOOR}"
            )
        warm_start = rows.get("warm_start") or {}
        if not warm_start.get("pcs_match"):
            failures.append(
                f"parallel/{artifact}: adopting a persisted cost model changed results"
            )
        if artifact == "ASW":
            # The warm-start race: fresh scheduling state that adopted the
            # persisted model must beat the model-less fresh state.
            if not warm_start.get("costmodel_digests_adopted"):
                failures.append(
                    "parallel/ASW: persisted store carried no cost-model digests"
                )
            cold = warm_start.get("cold_seconds")
            warm_s = warm_start.get("warm_seconds")
            if cold is None or warm_s is None or not warm_s < cold:
                failures.append(
                    f"parallel/ASW: warm start lost the wall clock "
                    f"({warm_s}s vs {cold}s cold)"
                )
            cold_miss = warm_start.get("cold_first_wave_misestimates")
            warm_miss = warm_start.get("warm_first_wave_misestimates")
            if cold_miss is None or warm_miss is None or not warm_miss < cold_miss:
                failures.append(
                    f"parallel/ASW: warm first wave misestimated {warm_miss} "
                    f"dispatches vs {cold_miss} cold"
                )
        if baseline is not None and artifact in baseline:
            old_pcs = baseline[artifact]["sweep"].get("distinct_path_conditions")
            new_pcs = sweep.get("distinct_path_conditions")
            if old_pcs is not None and new_pcs != old_pcs:
                failures.append(
                    f"parallel/{artifact}: distinct path conditions {new_pcs} != "
                    f"baseline {old_pcs}"
                )
    # Per-artifact absolute floors (hardware-independent by construction:
    # the scheduler keeps artifacts it cannot accelerate inline, so the
    # pipeline's worst case is the shared-cache serial sweep).
    for artifact, floor in PARALLEL_SPEEDUP_FLOORS.items():
        sweep = rows_by_artifact.get(artifact, {}).get("sweep", {})
        speedup = sweep.get("speedup")
        if speedup is None or speedup < floor:
            failures.append(
                f"parallel/{artifact}: speedup {speedup}x below the {floor}x floor"
            )
    # Job-summary table: one line per artifact so a CI log shows the
    # whole speedup picture without opening the JSON.
    if rows_by_artifact:
        print("       parallel sweep (plain serial vs pipeline):")
        header = (
            f"       {'artifact':<10}{'speedup':>9}{'floor':>7}{'plain_s':>9}"
            f"{'par_s':>8}{'shards':>8}{'misses':>8}{'warm_start':>16}"
        )
        print(header)
        for artifact, rows in rows_by_artifact.items():
            sweep, directed = rows["sweep"], rows["directed"]
            warm_start = rows.get("warm_start") or {}
            shards = sweep.get("shards_warmup", 0) + sweep.get("shards_timed", 0)
            race = (
                f"{warm_start.get('cold_seconds', 0):.3f}s"
                f">{warm_start.get('warm_seconds', 0):.3f}s"
            )
            print(
                f"       {artifact:<10}"
                f"{sweep.get('speedup', 0):>8}x"
                f"{PARALLEL_SPEEDUP_FLOORS.get(artifact, '-'):>7}"
                f"{sweep.get('serial_seconds', 0):>9.3f}"
                f"{sweep.get('parallel_seconds', 0):>8.3f}"
                f"{shards:>8}"
                f"{directed.get('strategy_token_misses', 0):>8}"
                f"{race:>16}"
            )


def _check_interproc(baseline, report, failures):
    """Gates for the interprocedural benchmark (bench_interproc.py).

    The bench enforces its own hard floors (callee-summary reuse >= 30%,
    caller-only edits must not affect the whole flattened CFG, parallel
    differential); this re-checks the floors on the report and compares the
    structural metrics against the checked-in baseline.
    """
    for artifact in ("ASW-CALLS", "FCS"):
        rows = report.get(artifact)
        if rows is None:
            failures.append(f"interproc/{artifact}: missing from report")
            continue
        for metric in ("reuse_min", "callee_preserving_reuse_min"):
            value = rows.get(metric)
            if value is None or value < REUSE_FLOOR:
                failures.append(
                    f"interproc/{artifact}.{metric}: {value} below {REUSE_FLOOR}"
                )
        if not rows.get("parallel", {}).get("pcs_match"):
            failures.append(
                f"interproc/{artifact}: workers>1 history diverged from serial"
            )
        if baseline is None or artifact not in baseline:
            continue
        old_rows = baseline[artifact]
        for metric in ("reuse_min", "callee_preserving_reuse_min"):
            old, new = old_rows.get(metric), rows.get(metric)
            if old is not None and new is not None and new < old - RATIO_TOLERANCE:
                failures.append(
                    f"interproc/{artifact}.{metric}: {new:.3f} regressed below "
                    f"baseline {old:.3f} - {RATIO_TOLERANCE}"
                )
        old_versions = {row["version"]: row for row in old_rows.get("versions", [])}
        for row in rows.get("versions", []):
            old_row = old_versions.get(row["version"])
            if old_row is None:
                continue
            for metric in ("dise_distinct_pcs", "full_distinct_pcs"):
                if row.get(metric) != old_row.get(metric):
                    failures.append(
                        f"interproc/{artifact}/{row['version']}.{metric}: "
                        f"{row.get(metric)} != baseline {old_row.get(metric)}"
                    )


def _check_compositional(baseline, report, failures):
    """Gates for the generalised call-summary benchmark (bench_compositional.py).

    The bench enforces its own hard gates (zero new entries from an added
    call site, cross-caller replay, instantiated-vs-native exactness at
    workers=1 and workers=2); this re-checks them on the report, compares
    the corpus hit rate against the checked-in baseline, and prints the
    hit-rate summary table.
    """
    rows_by_artifact = {}
    for artifact in ("ASW-CALLS", "FCS"):
        rows = report.get(artifact)
        if rows is None:
            failures.append(f"compositional/{artifact}: missing from report")
            continue
        rows_by_artifact[artifact] = rows
        independence = rows.get("site_independence", {})
        if independence.get("added_entries") != 0:
            failures.append(
                f"compositional/{artifact}: extra call site added "
                f"{independence.get('added_entries')} generalised entries (want 0)"
            )
        if not independence.get("variant_pcs_match"):
            failures.append(
                f"compositional/{artifact}: extra-call-site variant diverged from native"
            )
        for row in rows.get("versions", []):
            for gate in (
                "dise_pcs_match",
                "full_pcs_match",
                "parallel_dise_pcs_match",
                "parallel_full_pcs_match",
            ):
                if not row.get(gate):
                    failures.append(
                        f"compositional/{artifact}/{row.get('version')}: {gate} failed"
                    )
        hit_rate = rows.get("generalized", {}).get("hit_rate")
        if hit_rate is None:
            failures.append(f"compositional/{artifact}: no generalised cache traffic")
        elif baseline is not None and artifact in baseline:
            old = baseline[artifact].get("generalized", {}).get("hit_rate")
            if old is not None and hit_rate < old - RATIO_TOLERANCE:
                failures.append(
                    f"compositional/{artifact}.hit_rate: {hit_rate:.3f} regressed "
                    f"below baseline {old:.3f} - {RATIO_TOLERANCE}"
                )
    cross = report.get("cross_caller") or {}
    if cross.get("b_call_hits", 0) < 1 or cross.get("b_call_stores") != 0:
        failures.append(
            f"compositional/cross_caller: hits={cross.get('b_call_hits')} "
            f"stores={cross.get('b_call_stores')} (want >=1 / 0)"
        )
    if not cross.get("b_pcs_match"):
        failures.append("compositional/cross_caller: program B diverged from native")
    # Job-summary table: the corpus hit rate per artifact, so a CI log
    # shows how often call sites replayed a generalised entry instead of
    # recording one.
    if rows_by_artifact:
        print("       generalised call-summary corpus:")
        print(
            f"       {'artifact':<12}{'hit_rate':>9}{'hits':>7}{'stores':>8}"
            f"{'fallbacks':>11}{'callees':>9}"
        )
        for artifact, rows in rows_by_artifact.items():
            corpus = rows.get("generalized", {})
            print(
                f"       {artifact:<12}"
                f"{corpus.get('hit_rate', 0) or 0:>9}"
                f"{corpus.get('hits', 0):>7}"
                f"{corpus.get('stores', 0):>8}"
                f"{corpus.get('fallbacks', 0):>11}"
                f"{len(rows.get('entries_per_callee', {})):>9}"
            )


#: Hard floor for the fault benchmark's pool-level partial salvage (see
#: bench_faults.py; the pre-retry pipeline scored 0 here because one
#: crashed shard discarded the whole batch).
SALVAGE_FLOOR = 0.5


def _check_faults(baseline, report, failures):
    salvage = report.get("salvage") or {}
    if not salvage.get("shards"):
        failures.append("faults: no shards were dispatched under the fault schedule")
    elif not salvage.get("failed_shards"):
        failures.append("faults: the crash schedule fired nothing (clean run measured)")
    if not salvage.get("pcs_match"):
        failures.append("faults: losing shards changed the distinct path conditions")
    ratio = salvage.get("salvage_ratio")
    if ratio is None or ratio < SALVAGE_FLOOR:
        failures.append(f"faults: salvage_ratio {ratio} below {SALVAGE_FLOOR}")
    store = report.get("concurrent_store") or {}
    if store.get("lost_entries") != 0:
        failures.append(
            f"faults: concurrent store writers lost {store.get('lost_entries')} entries"
        )


def _check_lookahead(baseline, report, failures):
    for artifact in ("ASW", "WBS", "OAE"):
        row = report.get(artifact)
        if row is None:
            failures.append(f"lookahead/{artifact}: missing from report")
            continue
        if not row.get("path_conditions_match"):
            failures.append(f"lookahead/{artifact}: path conditions diverged between modes")
        if baseline is None or artifact not in baseline:
            continue
        for metric in ("query_reduction", "decision_reduction"):
            old = baseline[artifact].get(metric)
            new = row.get(metric)
            if old is not None and new is not None and new < old - RATIO_TOLERANCE:
                failures.append(
                    f"lookahead/{artifact}.{metric}: {new:.3f} regressed below "
                    f"baseline {old:.3f} - {RATIO_TOLERANCE}"
                )
        old_pcs = baseline[artifact].get("distinct_path_conditions")
        new_pcs = row.get("distinct_path_conditions")
        if old_pcs is not None and new_pcs != old_pcs:
            failures.append(
                f"lookahead/{artifact}.distinct_path_conditions: {new_pcs} != baseline {old_pcs}"
            )


def _check_obs(baseline, report, failures):
    """Gates for the telemetry benchmark (bench_obs.py).

    All three legs are self-judging (the bench computes the booleans);
    this enforces them: overhead within budget, telemetry observationally
    silent on every artifact history, and a healthy merged workers=2
    trace.
    """
    overhead = report.get("overhead") or {}
    if not overhead.get("within_budget"):
        failures.append(
            f"obs: telemetry overhead ratio {overhead.get('ratio')} exceeded "
            f"the {overhead.get('budget')}x + {overhead.get('epsilon_seconds')}s budget"
        )
    for artifact, rows in sorted((report.get("differential") or {}).items()):
        if not rows.get("pcs_match"):
            failures.append(
                f"obs/{artifact}: telemetry changed the distinct path conditions"
            )
        if not rows.get("counters_match"):
            failures.append(f"obs/{artifact}: telemetry changed the leg counters")
    trace = report.get("trace") or {}
    if not trace.get("shard_spans"):
        failures.append("obs: the workers=2 trace adopted no worker shard spans")
    elif not trace.get("shard_spans_under_pool"):
        failures.append("obs: shard spans were not nested under their pool span")
    if trace.get("adopt_skipped"):
        failures.append(
            f"obs: {trace['adopt_skipped']} worker trace rows were dropped during adoption"
        )
    if not trace.get("chrome_loadable"):
        failures.append("obs: the Chrome trace artifact did not load back as JSON")


def _export_trace(name, recorder):
    """Write one benchmark's trace artifact pair under ``traces/``."""
    os.makedirs(TRACES_DIR, exist_ok=True)
    write_chrome_trace(
        recorder,
        os.path.join(TRACES_DIR, f"{name}.trace.json"),
        metadata={"benchmark": name},
    )
    write_jsonl(recorder, os.path.join(TRACES_DIR, f"{name}.trace.jsonl"))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--list", action="store_true", help="list benchmarks and exit")
    parser.add_argument("--only", nargs="*", help="run only the named bench modules")
    args = parser.parse_args(argv)

    if args.list:
        for name in BENCHMARKS:
            print(name)
        return 0

    selected = {
        name: entry
        for name, entry in BENCHMARKS.items()
        if not args.only or name in args.only
    }
    if args.only and len(selected) != len(args.only):
        unknown = set(args.only) - set(selected)
        print(f"unknown benchmarks: {', '.join(sorted(unknown))}", file=sys.stderr)
        return 2

    # Snapshot the checked-in baselines up front: the JSON benchmarks
    # overwrite their own files while running, and a regressed run must not
    # clobber the reference it was judged against (a second run would then
    # compare regressed-vs-regressed and pass).
    baselines = {
        name: _load_baseline(name)
        for name in (
            "BENCH_solver.json",
            "BENCH_history.json",
            "BENCH_lookahead.json",
            "BENCH_parallel.json",
            "BENCH_interproc.json",
            "BENCH_compositional.json",
            "BENCH_faults.json",
            "BENCH_obs.json",
        )
    }
    solver_baseline = baselines["BENCH_solver.json"]
    history_baseline = baselines["BENCH_history.json"]
    lookahead_baseline = baselines["BENCH_lookahead.json"]
    parallel_baseline = baselines["BENCH_parallel.json"]
    interproc_baseline = baselines["BENCH_interproc.json"]
    compositional_baseline = baselines["BENCH_compositional.json"]
    faults_baseline = baselines["BENCH_faults.json"]
    obs_baseline = baselines["BENCH_obs.json"]

    failures = []
    crashes = {}
    timings = {}
    for name, entry in selected.items():
        started = time.perf_counter()
        recorder = None
        try:
            module = importlib.import_module(name)
            runner = getattr(module, entry)
            with obs.recording(name, benchmark=name) as recorder:
                report = runner()
        except Exception as error:
            # One crashed benchmark must not stop the sweep or bury the
            # others' results under its traceback: record a one-line
            # summary here, keep running, and print the full tracebacks
            # together at the end.  The partial trace is still exported --
            # a flame chart of a crashed benchmark is exactly what a CI
            # post-mortem wants.
            failures.append(f"{name}: {type(error).__name__}: {error}")
            crashes[name] = traceback.format_exc()
            elapsed = time.perf_counter() - started
            timings[name] = elapsed
            print(f"  FAIL {name:<32} {elapsed:6.2f}s  {type(error).__name__}: {error}")
            if recorder is not None:
                _export_trace(name, recorder)
            continue
        elapsed = time.perf_counter() - started
        timings[name] = elapsed
        print(f"  ok   {name:<32} {elapsed:6.2f}s")
        _export_trace(name, recorder)
        if name == "bench_solver_incremental":
            _check_solver(solver_baseline, report, failures)
        elif name == "bench_version_history":
            _check_history(history_baseline, report, failures)
        elif name == "bench_lookahead":
            _check_lookahead(lookahead_baseline, report, failures)
        elif name == "bench_parallel":
            _check_parallel(parallel_baseline, report, failures)
        elif name == "bench_interproc":
            _check_interproc(interproc_baseline, report, failures)
        elif name == "bench_compositional":
            _check_compositional(compositional_baseline, report, failures)
        elif name == "bench_faults":
            _check_faults(faults_baseline, report, failures)
        elif name == "bench_obs":
            _check_obs(obs_baseline, report, failures)

    # Wall-clock recap, slowest first: the interleaved gate output above
    # pushes the per-benchmark timing lines apart, and "which benchmark is
    # eating the CI budget" is the question this table answers at a glance.
    if timings:
        total = sum(timings.values())
        print(f"\n  wall clock ({total:.2f}s total):")
        print(f"  {'benchmark':<34}{'seconds':>9}{'share':>7}")
        for name, elapsed in sorted(timings.items(), key=lambda kv: -kv[1]):
            status = "FAIL" if name in crashes else "ok"
            share = elapsed / total if total else 0.0
            print(f"  {name:<34}{elapsed:>9.2f}{share:>6.0%} {status}")

    if failures:
        for name, baseline in baselines.items():
            if baseline is not None:
                with open(os.path.join(BENCH_DIR, name), "w", encoding="utf-8") as handle:
                    json.dump(baseline, handle, indent=2, sort_keys=True)
                    handle.write("\n")
        print(f"\n{len(failures)} failure(s) (baseline JSONs restored):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        if crashes:
            print("\nfull tracebacks:", file=sys.stderr)
            for name, formatted in crashes.items():
                print(f"\n--- {name} ---\n{formatted}", file=sys.stderr)
        return 1
    print(f"\nall {len(selected)} benchmarks passed their gates")
    return 0


if __name__ == "__main__":
    sys.exit(main())
