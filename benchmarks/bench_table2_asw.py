"""Table 2(a): DiSE versus full symbolic execution on the ASW artifact.

For each of the 15 ASW versions the harness reports the columns of the paper's
Table 2: changed CFG nodes, affected CFG nodes, analysis time, states explored
and path conditions, for DiSE and for full symbolic execution of the modified
method.
"""

from conftest import emit, table2_rows

from repro.artifacts import asw_artifact
from repro.reporting.tables import render_table2


def run_table2_asw():
    return table2_rows(asw_artifact())


def test_table2_asw(run_once):
    rows = run_once(run_table2_asw)
    emit("table2_asw", render_table2(rows, "ASW"))
    assert len(rows) == 15
    for row in rows:
        assert row.dise_path_conditions <= row.full_path_conditions
        assert row.dise_states <= row.full_states
    # localised changes produce far fewer affected path conditions ...
    assert any(row.dise_path_conditions == 0 for row in rows)
    # ... and broad changes leave DiSE close to (but never above) full execution
    assert any(row.dise_path_conditions >= row.full_path_conditions // 2 for row in rows)
