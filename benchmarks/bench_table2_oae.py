"""Table 2(c): DiSE versus full symbolic execution on the OAE artifact."""

from conftest import emit, table2_rows

from repro.artifacts import oae_artifact
from repro.reporting.tables import render_table2


def run_table2_oae():
    return table2_rows(oae_artifact())


def test_table2_oae(run_once):
    rows = run_once(run_table2_oae)
    emit("table2_oae", render_table2(rows, "OAE"))
    assert len(rows) == 9
    for row in rows:
        assert row.dise_path_conditions <= row.full_path_conditions
        assert row.dise_states <= row.full_states
    # output-only changes produce (close to) zero affected path conditions
    assert min(row.dise_path_conditions for row in rows) <= 10
    # rule-threshold changes affect a large fraction of the paths
    assert max(row.dise_path_conditions for row in rows) >= 200
