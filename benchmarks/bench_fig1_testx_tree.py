"""Figure 1: the symbolic execution tree of ``testX``.

Regenerates the tree of the paper's first example: two feasible paths with
path conditions ``X > 0`` and ``!(X > 0)`` and final symbolic values
``Y + X`` / ``Y - X``.
"""

from conftest import emit

from repro.artifacts.simple import testx_program
from repro.reporting.figures import render_execution_tree
from repro.symexec.engine import symbolic_execute


def build_figure1():
    result = symbolic_execute(
        testx_program(), "testX", build_tree=True, tracked_variables=["x", "y"]
    )
    return result


def test_fig1_testx_tree(run_once):
    result = run_once(build_figure1)
    text = render_execution_tree(result, title="Figure 1 (testX)")
    emit("fig1_testx_tree", text)
    assert len(result.path_conditions) == 2
    assert result.tree.count() == result.statistics.states_explored
