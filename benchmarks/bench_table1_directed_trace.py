"""Table 1: the directed symbolic execution trace for the §2.2 change.

Regenerates the explored/unexplored set evolution, including the pruned
``<n0, n1, n5, n6, n8>`` sequence ("no path") and the reset that happens when
the search enters the ``n2`` branch.
"""

from conftest import emit

from repro.artifacts.simple import update_base_program, update_modified_program
from repro.core.dise import run_dise
from repro.reporting.tables import render_directed_trace


def run_directed_with_trace():
    return run_dise(
        update_base_program(),
        update_modified_program(),
        procedure="update",
        record_trace=True,
    )


def test_table1_directed_trace(run_once):
    result = run_once(run_directed_with_trace)
    text = render_directed_trace(result.strategy.trace_rows, title="Table 1")
    emit("table1_directed_trace", text)
    traces = {row.trace for row in result.strategy.trace_rows}
    assert ("n0", "n1", "n5", "n6", "n7", "n10", "n11") in traces
    assert ("n0", "n1", "n5", "n6", "n8") in traces
    assert len(result.path_conditions) == 8
