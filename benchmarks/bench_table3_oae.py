"""Table 3(c): regression test selection and augmentation for OAE."""

from conftest import emit, table3_reports

from repro.artifacts import oae_artifact
from repro.reporting.tables import render_table3


def run_table3_oae():
    return table3_reports(oae_artifact())


def test_table3_oae(run_once):
    reports = run_once(run_table3_oae)
    emit("table3_oae", render_table3(reports, "OAE"))
    assert len(reports) == 9
    for report in reports:
        assert report.total == report.selected_count + report.added_count
    # some changes need many new tests, others need none (paper Table 3(c) shape)
    assert any(report.total == 0 for report in reports)
    assert any(report.added_count + report.selected_count > 50 for report in reports)
