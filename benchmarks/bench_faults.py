"""Fault-tolerance benchmark (ours, not a paper table).

Two legs, written to ``BENCH_faults.json``:

* **salvage** -- full symbolic execution of every ASW history version with
  workers under an injected worker-crash schedule (``seed:6,crash:0.3``),
  with retries and inline quarantine *disabled* so the measurement is the
  honest pool-level one: a crashed shard is really lost and only partial
  salvage keeps its siblings.  Gated on ``salvage_ratio`` (surviving
  shards / dispatched shards) >= 0.5 -- the pre-PR pipeline scored 0 here,
  because one crashed shard discarded the whole ``map_async`` batch -- and
  on distinct-PC equality with a clean serial oracle (losing a shard may
  cost speed, never output).
* **concurrent_store** -- two live processes dumping independent summary
  corpora to one :class:`~repro.parallel.store.PersistentSummaryStore`
  path.  Gated on ``lost_entries == 0``: the lock-merge-publish sequence
  must union the corpora, where last-writer-wins clobbering would silently
  drop one process's entries.

Both schedules are seeded, so the gated numbers are deterministic across
runs and machines.
"""

import json
import multiprocessing
import os
import warnings

from repro import faults
from repro.artifacts import asw_artifact
from repro.artifacts.simple import update_base_program, update_modified_program
from repro.lang.parser import parse_program
from repro.parallel.shard import (
    ShardConfig,
    reset_scheduler_cost_model,
    warm_pool,
)
from repro.parallel.store import PersistentSummaryStore
from repro.symexec.engine import symbolic_execute
from repro.symexec.summary_cache import SummaryCache

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "BENCH_faults.json")
STORE_DIR = os.path.join(os.path.dirname(__file__), "results", "faults_store")

WORKERS = int(os.environ.get("REPRO_PARALLEL_WORKERS", "4"))
FAULT_SPEC = "seed:6,crash:0.3"
SALVAGE_FLOOR = 0.5

#: No retries, no inline rescue: measure what pool-level partial salvage
#: alone preserves when ~30% of shards crash.
SALVAGE_CONFIG = ShardConfig(
    cold_split_depth=1,
    min_shards=1,
    max_task_retries=0,
    retry_backoff_seconds=0.01,
    quarantine_inline=False,
)


def _distinct(result):
    return sorted(str(c) for c in result.summary.distinct_path_conditions())


def _salvage_leg(workers):
    # The seeded schedule promises deterministic numbers, so the scheduler
    # must start cold here no matter which benchmarks ran earlier in the
    # process (a warm run-level gate could keep whole versions inline).
    reset_scheduler_cost_model()
    artifact = asw_artifact()
    programs = [
        (name, parse_program(source)) for name, _, _, source in artifact.history()
    ]
    plan = faults.parse_spec(FAULT_SPEC)
    shards = failed = retried = 0
    salvaged_entries = 0
    failure_samples = []
    pcs_match = True
    with faults.injected(plan):
        for name, program in programs:
            with faults.suspended():
                serial = symbolic_execute(
                    program, procedure_name=artifact.procedure_name
                )
            with warnings.catch_warnings():
                # The degradation warnings are the expected condition here.
                warnings.simplefilter("ignore", RuntimeWarning)
                chaotic = symbolic_execute(
                    program,
                    procedure_name=artifact.procedure_name,
                    workers=workers,
                    parallel_config=SALVAGE_CONFIG,
                )
            report = chaotic.parallel
            if report is not None:
                shards += report.shards
                failed += report.failed_shards
                retried += report.retried_shards
                salvaged_entries += report.salvaged_entries
                if report.failure_reasons and len(failure_samples) < 5:
                    failure_samples.append(report.failure_reasons[0])
            if _distinct(chaotic) != _distinct(serial):
                pcs_match = False
    return {
        "spec": FAULT_SPEC,
        "versions": len(programs),
        "shards": shards,
        "failed_shards": failed,
        "salvaged_shards": shards - failed,
        "salvage_ratio": round((shards - failed) / shards, 4) if shards else None,
        "retried_shards": retried,
        "salvaged_entries": salvaged_entries,
        "failure_samples": failure_samples,
        "pcs_match": pcs_match,
    }


def _store_writer(path, which):
    program = update_base_program() if which == "base" else update_modified_program()
    cache = SummaryCache()
    symbolic_execute(program, procedure_name="update", summary_cache=cache)
    PersistentSummaryStore(path).dump(cache)


def _concurrent_store_leg():
    os.makedirs(STORE_DIR, exist_ok=True)
    shared_path = os.path.join(STORE_DIR, "concurrent_store.json")
    if os.path.exists(shared_path):
        os.unlink(shared_path)
    writers = [
        multiprocessing.Process(target=_store_writer, args=(shared_path, which))
        for which in ("base", "modified")
    ]
    for writer in writers:
        writer.start()
    for writer in writers:
        writer.join(timeout=120)

    # What each writer would have produced alone, for the union oracle.
    expected = set()
    for which in ("base", "modified"):
        solo_path = os.path.join(STORE_DIR, f"solo_{which}.json")
        if os.path.exists(solo_path):
            os.unlink(solo_path)
        _store_writer(solo_path, which)
        expected |= PersistentSummaryStore(solo_path).checksums() or set()

    final = PersistentSummaryStore(shared_path).checksums() or set()
    return {
        "writers": len(writers),
        "writer_exitcodes": [writer.exitcode for writer in writers],
        "expected_entries": len(expected),
        "final_entries": len(final),
        "lost_entries": len(expected - final),
    }


def run_faults_benchmarks(workers=None):
    workers = workers or WORKERS
    warm_pool(workers)
    report = {
        "workers": workers,
        "salvage": _salvage_leg(workers),
        "concurrent_store": _concurrent_store_leg(),
    }
    with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def test_faults_benchmark(run_once):
    report = run_once(run_faults_benchmarks)
    print()
    salvage, store = report["salvage"], report["concurrent_store"]
    print(
        f"salvage: {salvage['salvaged_shards']}/{salvage['shards']} shards survived "
        f"a {FAULT_SPEC} schedule (ratio {salvage['salvage_ratio']}), "
        f"pcs_match={salvage['pcs_match']}; concurrent store lost "
        f"{store['lost_entries']} of {store['expected_entries']} entries"
    )
    assert salvage["shards"] > 0, "no shards were dispatched under the fault schedule"
    assert salvage["failed_shards"] > 0, (
        "the crash schedule fired nothing -- the salvage gate measured a clean run"
    )
    assert salvage["pcs_match"], "losing shards changed the output"
    assert salvage["salvage_ratio"] >= SALVAGE_FLOOR, (
        f"partial salvage kept only {salvage['salvage_ratio']:.0%} of shards"
    )
    assert store["writer_exitcodes"] == [0, 0]
    assert store["lost_entries"] == 0, "concurrent dumps lost entries"
    assert os.path.exists(RESULTS_PATH)


if __name__ == "__main__":
    print(json.dumps(run_faults_benchmarks(), indent=2, sort_keys=True))
