"""Figure 2: the simplified WBS ``update`` procedure and its CFG.

Regenerates the program listing's CFG with the paper's n0..n14 node naming and
annotates the affected (highlighted) and changed nodes for the §2.2 change.
"""

from conftest import emit

from repro.artifacts.simple import update_base_program, update_modified_program
from repro.cfg.builder import build_cfg
from repro.core.dise import DiSE
from repro.reporting.figures import render_cfg_figure


def build_figure2():
    dise = DiSE(update_base_program(), update_modified_program(), procedure_name="update")
    static = dise.compute_affected()
    return static


def test_fig2_update_cfg(run_once):
    static = run_once(build_figure2)
    changed = static.diff_map.changed_or_added_mod_nodes()
    text = render_cfg_figure(
        static.cfg_mod, affected=static.affected, changed=changed, title="Figure 2 (update)"
    )
    emit("fig2_update_cfg", text)
    statement_nodes = [n for n in static.cfg_mod.nodes if n.node_id >= 0]
    assert len(statement_nodes) == 15
    assert [n.name for n in changed] == ["n0"]
