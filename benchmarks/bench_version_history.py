"""Batch version-history benchmark (ours, not a paper table).

Runs every artifact's whole version history through the
:class:`~repro.evolution.history.VersionHistoryRunner` -- one parse per
program text, one diff per adjacent pair, one shared solver and one shared
cross-version summary cache -- alongside a cold per-version baseline, and
writes ``BENCH_history.json`` next to this file so future PRs have a
perf trajectory to regress against.

The headline number is ``summary_reuse`` per version: the fraction of the
previous versions' summary work the cached run did not redo (whole-path
replay or solver decisions skipped through segment composition).  The
gate asserts every version beyond the first seeded one reuses at least 30%.
"""

import json
import os

from repro.artifacts import all_artifacts
from repro.evolution.history import VersionHistoryRunner

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "BENCH_history.json")

REUSE_FLOOR = 0.30


def run_history_benchmarks():
    """Run the three artifact histories and persist the report."""
    report = {}
    for artifact in all_artifacts():
        runner = VersionHistoryRunner(artifact, measure_baseline=True)
        history = runner.run()
        rows = history.as_dict()
        rows["summary_reuse_min"] = min(
            row.summary_reuse for row in history.versions if row.summary_reuse is not None
        )
        rows["warm_seconds"] = round(
            sum((r.dise or {}).get("seconds", 0) + (r.full or {}).get("seconds", 0)
                for r in history.versions),
            6,
        )
        rows["cold_seconds"] = round(
            sum((r.baseline_dise or {}).get("seconds", 0)
                + (r.baseline_full or {}).get("seconds", 0)
                for r in history.versions),
            6,
        )
        report[artifact.name] = rows
    with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def test_version_history(run_once):
    report = run_once(run_history_benchmarks)
    print()
    for name, rows in report.items():
        print(
            f"{name}: min summary_reuse={rows['summary_reuse_min']:.2f} "
            f"warm={rows['warm_seconds']:.2f}s cold={rows['cold_seconds']:.2f}s "
            f"cache={rows['cache']}"
        )
    for name, rows in report.items():
        # The acceptance gate: every version N+1 reuses >= 30% of the
        # summaries accumulated up to version N.
        assert rows["summary_reuse_min"] >= REUSE_FLOOR, (
            f"{name}: a version reused only {rows['summary_reuse_min']:.0%} "
            f"of the previous versions' summaries"
        )
        # Reuse must show up as saved work, not just counters: the cached
        # history may not explore more states than the cold baseline.
        for row in rows["versions"]:
            if row["full"] is not None and row["baseline_full"] is not None:
                assert row["full"]["states"] <= row["baseline_full"]["states"]
            if row["dise"] is not None and row["baseline_dise"] is not None:
                assert row["dise"]["states"] <= row["baseline_dise"]["states"]
    assert os.path.exists(RESULTS_PATH)


if __name__ == "__main__":
    print(json.dumps(run_history_benchmarks(), indent=2, sort_keys=True))
