"""Interprocedural DiSE benchmark (ours, not a paper table).

Runs the two multi-procedure version histories (ASW-CALLS and FCS, see
:mod:`repro.artifacts.interproc`) through the shared-cache
:class:`~repro.evolution.history.VersionHistoryRunner`, serially and with
``workers=2``, and writes ``BENCH_interproc.json``.  Hard gates (enforced
here, re-checked against the baseline JSON by ``run_all.py``):

* **callee-summary reuse** -- every version must reuse >= 30% of the
  previous versions' summaries, and the *callee-preserving* versions
  (caller-only edits, which leave every callee's spliced regions and
  digests intact) must clear the same floor specifically: this is the
  per-procedure cache scoping earning its keep.
* **interprocedural affected-set precision** -- caller-only edits must not
  drag the whole flattened CFG into the affected sets (ratio < 1), and the
  directed run must generate strictly fewer distinct path conditions than
  full symbolic execution on at least one version per artifact.
* **parallel differential** -- the ``workers=2`` history must emit exactly
  the serial history's distinct path conditions for every version of both
  artifacts (call frames and callee summaries crossing the process fence
  must be invisible in the output).

The report also records the cost-model shard scheduling counters
(``shards`` vs ``cost_inline``): with a warm shared cache the collector
keeps subtrees estimated below the fence overhead inline instead of
shipping them.
"""

import json
import os
import time

from repro.artifacts import interproc_artifacts
from repro.cfg.builder import build_cfg
from repro.evolution.history import VersionHistoryRunner
from repro.lang.parser import parse_program
from repro.parallel.shard import warm_pool

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "BENCH_interproc.json")

WORKERS = int(os.environ.get("REPRO_PARALLEL_WORKERS", "2"))
REUSE_FLOOR = 0.30

#: Versions whose edits touch only the entry procedure: every callee's
#: spliced regions hash identically to the previous version, so their
#: summaries must keep replaying.
CALLEE_PRESERVING = {
    "ASW-CALLS": ("v4", "v5"),
    "FCS": ("v3", "v6"),
}


def _history_rows(artifact, report):
    preserving = set(CALLEE_PRESERVING.get(artifact.name, ()))
    rows = []
    for row in report.versions:
        cfg = build_cfg(
            parse_program(artifact.history()[0][3])
            if row.version == "base"
            else parse_program(artifact.version_source(row.version)),
            artifact.procedure_name,
        )
        rows.append(
            {
                "version": row.version,
                "changes": row.changes,
                "description": row.description,
                "callee_preserving": row.version in preserving,
                "summary_reuse": row.summary_reuse,
                "hit_ratio": row.hit_ratio,
                "changed_nodes": row.changed_nodes,
                "affected_nodes": row.affected_nodes,
                "cfg_nodes": len(cfg),
                "affected_ratio": round(row.affected_nodes / len(cfg), 4),
                "invalidated": row.invalidated,
                "dise_distinct_pcs": len(row.dise_distinct_pcs),
                "full_distinct_pcs": len(row.full_distinct_pcs),
            }
        )
    return rows


def _parallel_leg(artifact, serial_report):
    warm_pool(WORKERS)
    started = time.perf_counter()
    report = VersionHistoryRunner(artifact, workers=WORKERS).run()
    seconds = time.perf_counter() - started
    pcs_match = all(
        serial_row.dise_distinct_pcs == parallel_row.dise_distinct_pcs
        and serial_row.full_distinct_pcs == parallel_row.full_distinct_pcs
        for serial_row, parallel_row in zip(serial_report.versions, report.versions)
    )
    return {
        "workers": WORKERS,
        "seconds": round(seconds, 6),
        "pcs_match": pcs_match,
    }


def run_interproc_benchmarks():
    report = {}
    for artifact in interproc_artifacts():
        started = time.perf_counter()
        serial_report = VersionHistoryRunner(artifact).run()
        serial_seconds = time.perf_counter() - started
        rows = _history_rows(artifact, serial_report)
        parallel = _parallel_leg(artifact, serial_report)

        reuse_values = [r["summary_reuse"] for r in rows if r["summary_reuse"] is not None]
        preserving_reuse = [
            r["summary_reuse"]
            for r in rows
            if r["callee_preserving"] and r["summary_reuse"] is not None
        ]
        entry = {
            "procedure": artifact.procedure_name,
            "versions": rows,
            "reuse_min": min(reuse_values) if reuse_values else None,
            "callee_preserving_reuse_min": min(preserving_reuse)
            if preserving_reuse
            else None,
            "serial_seconds": round(serial_seconds, 6),
            "parallel": parallel,
            "cache": serial_report.cache,
        }
        report[artifact.name] = entry

        # -- hard gates ------------------------------------------------------
        if entry["reuse_min"] is None or entry["reuse_min"] < REUSE_FLOOR:
            raise AssertionError(
                f"{artifact.name}: summary reuse {entry['reuse_min']} below {REUSE_FLOOR}"
            )
        if (
            entry["callee_preserving_reuse_min"] is None
            or entry["callee_preserving_reuse_min"] < REUSE_FLOOR
        ):
            raise AssertionError(
                f"{artifact.name}: callee-preserving reuse "
                f"{entry['callee_preserving_reuse_min']} below {REUSE_FLOOR}"
            )
        for row in rows:
            if row["callee_preserving"] and row["affected_ratio"] >= 1.0:
                raise AssertionError(
                    f"{artifact.name}/{row['version']}: caller-only edit affected "
                    f"the whole flattened CFG ({row['affected_nodes']} nodes)"
                )
        if not any(
            row["dise_distinct_pcs"] < row["full_distinct_pcs"] for row in rows
        ):
            raise AssertionError(
                f"{artifact.name}: directed search never generated fewer path "
                f"conditions than full symbolic execution"
            )
        if not parallel["pcs_match"]:
            raise AssertionError(
                f"{artifact.name}: workers={WORKERS} history diverged from serial"
            )

    with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


if __name__ == "__main__":
    result = run_interproc_benchmarks()
    for name, entry in result.items():
        print(
            f"{name}: reuse_min={entry['reuse_min']} "
            f"callee_preserving_reuse_min={entry['callee_preserving_reuse_min']} "
            f"parallel_pcs_match={entry['parallel']['pcs_match']}"
        )
