"""Table 3(b): regression test selection and augmentation for WBS."""

from conftest import emit, table3_reports

from repro.artifacts import wbs_artifact
from repro.reporting.tables import render_table3


def run_table3_wbs():
    return table3_reports(wbs_artifact())


def test_table3_wbs(run_once):
    reports = run_once(run_table3_wbs)
    emit("table3_wbs", render_table3(reports, "WBS"))
    assert len(reports) == 16
    for report in reports:
        assert report.total == report.selected_count + report.added_count
    # most WBS tests can be re-used (selected) rather than regenerated
    assert any(report.selected_count > 0 for report in reports)
