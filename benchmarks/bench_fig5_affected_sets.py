"""Figure 5(b): the affected-set fixed-point computation for the §2.2 change.

Uses the strict published rule set (no forward-write extension) so the rule
applications line up with the paper's table; the final sets must be
ACN = {n0, n2, n10, n12} and AWN = {n1, n3, n4, n5, n11, n13, n14}.
"""

from conftest import emit

from repro.artifacts.simple import update_base_program, update_modified_program
from repro.core.dise import DiSE
from repro.reporting.tables import render_affected_sets, render_affected_trace


def compute_affected_sets():
    dise = DiSE(
        update_base_program(),
        update_modified_program(),
        procedure_name="update",
        forward_writes=False,
    )
    return dise.compute_affected()


def test_fig5_affected_sets(run_once):
    static = run_once(compute_affected_sets)
    text = render_affected_trace(static.affected.trace, title="Figure 5(b)")
    text += "\n\n" + render_affected_sets(static.affected)
    emit("fig5_affected_sets", text)
    acn, awn = static.affected.names()
    assert acn == ("n0", "n2", "n10", "n12")
    assert awn == ("n1", "n3", "n4", "n5", "n11", "n13", "n14")
