"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and prints it
(run ``pytest benchmarks/ --benchmark-only -s`` to see the rendered output);
the printed rows are also appended to ``benchmarks/results/`` so EXPERIMENTS.md
can be refreshed from a benchmark run.
"""

from __future__ import annotations

import os
from typing import List

import pytest

from repro.artifacts.mutants import Artifact
from repro.core.dise import ComparisonRow, compare_dise_with_full, run_dise
from repro.evolution.regression import RegressionReport, select_and_augment
from repro.evolution.testgen import generate_tests
from repro.solver.core import ConstraintSolver
from repro.symexec.engine import symbolic_execute

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name: str, text: str) -> None:
    """Print a rendered table and persist it under benchmarks/results/."""
    print()
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w", encoding="utf-8") as handle:
        handle.write(text + "\n")


def table2_rows(artifact: Artifact) -> List[ComparisonRow]:
    """DiSE versus full symbolic execution for every version of an artifact."""
    base = artifact.base_program()
    rows = []
    for spec in artifact.versions:
        rows.append(
            compare_dise_with_full(
                base,
                artifact.version_program(spec.name),
                procedure=artifact.procedure_name,
                version_label=spec.name,
            )
        )
    return rows


def table3_reports(artifact: Artifact) -> List[RegressionReport]:
    """Regression test selection/augmentation for every version of an artifact."""
    base = artifact.base_program()
    base_procedure = base.procedure(artifact.procedure_name)
    base_summary = symbolic_execute(
        base, artifact.procedure_name, solver=ConstraintSolver()
    ).summary
    existing_suite = generate_tests(base_summary, base_procedure)

    reports = []
    for spec in artifact.versions:
        modified = artifact.version_program(spec.name)
        dise_result = run_dise(
            base, modified, procedure=artifact.procedure_name, solver=ConstraintSolver()
        )
        dise_suite = generate_tests(
            dise_result.path_conditions, modified.procedure(artifact.procedure_name)
        )
        reports.append(
            select_and_augment(
                existing_suite, dise_suite, version=spec.name, changes=spec.change_count
            )
        )
    return reports


@pytest.fixture
def run_once(benchmark):
    """Run a workload exactly once under pytest-benchmark timing."""

    def runner(function, *args, **kwargs):
        return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
