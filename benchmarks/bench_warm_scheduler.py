#!/usr/bin/env python
"""One real-process leg of the warm-scheduler check (CI's two-process race).

``bench_parallel.py``'s ``warm_start`` leg reproduces fresh-process
scheduling state in-process by resetting the global cost model.  This
driver is the honest version: CI runs it **twice as separate OS
processes** against one shared :class:`PersistentSummaryStore`::

    PYTHONPATH=src python benchmarks/bench_warm_scheduler.py \
        --store benchmarks/results/warm_scheduler_store.json \
        --label cold --out benchmarks/results/warm_scheduler_cold.json
    PYTHONPATH=src python benchmarks/bench_warm_scheduler.py \
        --store benchmarks/results/warm_scheduler_store.json \
        --label warm --out benchmarks/results/warm_scheduler_warm.json \
        --expect-adopted --compare benchmarks/results/warm_scheduler_cold.json

Each invocation runs the full ASW version history through
:class:`VersionHistoryRunner` with ``store_path`` set, so the first
process publishes its learned cost-model state (format-4 ``costmodel``
entry) alongside the summaries and the second process adopts it before
analysing anything.  ``--expect-adopted`` fails the leg when nothing was
adopted (the persistence path silently broke); ``--compare`` fails it
when the two processes' distinct path conditions diverge (a warm
scheduler must never change results).  Both legs leave trace artifacts
under ``--trace-dir`` for CI to upload.
"""

import argparse
import json
import os
import sys
import time

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(BENCH_DIR)
for path in (BENCH_DIR, os.path.join(REPO_ROOT, "src")):
    if path not in sys.path:
        sys.path.insert(0, path)

from repro import obs
from repro.artifacts import asw_artifact
from repro.evolution.history import VersionHistoryRunner
from repro.obs.export import write_chrome_trace, write_jsonl


def run_warm_scheduler(store_path, label="run", workers=2):
    """Run the ASW history against ``store_path`` and report what moved.

    ``workers`` must be > 1: a serial history never shards, so its cost
    model observes nothing and the published state would be empty -- the
    adoption check below would then pass vacuously on a broken store.
    """
    artifact = asw_artifact()
    started = time.perf_counter()
    report = VersionHistoryRunner(
        artifact, store_path=store_path, workers=workers
    ).run()
    elapsed = time.perf_counter() - started
    return {
        "artifact": artifact.name,
        "label": label,
        "workers": workers,
        "store_path": store_path,
        "elapsed_seconds": round(elapsed, 6),
        "costmodel_adopted": report.cache.get("costmodel_adopted", 0),
        "costmodel_published": bool(report.cache.get("costmodel_published")),
        "store_loaded": report.cache.get("store_loaded", 0),
        "store_skipped": report.cache.get("store_skipped", 0),
        "store_dumped": report.cache.get("store_dumped", 0),
        "pcs": {
            row.version: [list(row.dise_distinct_pcs), list(row.full_distinct_pcs)]
            for row in report.versions
        },
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--store", required=True, help="shared summary-store path")
    parser.add_argument("--label", default="run", help="leg name for the report")
    parser.add_argument(
        "--workers",
        type=int,
        default=int(os.environ.get("REPRO_PARALLEL_WORKERS", "2")),
        help="pool size for the history runs (must be > 1 to shard)",
    )
    parser.add_argument("--out", help="write the leg report JSON here")
    parser.add_argument(
        "--expect-adopted",
        action="store_true",
        help="fail unless a persisted cost-model state was adopted",
    )
    parser.add_argument(
        "--compare",
        help="a prior leg's --out JSON; fail when path conditions diverge",
    )
    parser.add_argument(
        "--trace-dir",
        default=os.path.join(BENCH_DIR, "traces"),
        help="where the trace artifact pair lands",
    )
    args = parser.parse_args(argv)

    os.makedirs(os.path.dirname(os.path.abspath(args.store)), exist_ok=True)
    name = f"bench_warm_scheduler_{args.label}"
    with obs.recording(name, benchmark=name) as recorder:
        report = run_warm_scheduler(
            args.store, label=args.label, workers=args.workers
        )
    os.makedirs(args.trace_dir, exist_ok=True)
    write_chrome_trace(
        recorder,
        os.path.join(args.trace_dir, f"{name}.trace.json"),
        metadata={"benchmark": name},
    )
    write_jsonl(recorder, os.path.join(args.trace_dir, f"{name}.trace.jsonl"))

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")

    failures = []
    if args.expect_adopted and not report["costmodel_adopted"]:
        failures.append(
            "no persisted cost-model digests were adopted -- the warm process "
            "is scheduling cold"
        )
    if args.compare:
        with open(args.compare, "r", encoding="utf-8") as handle:
            prior = json.load(handle)
        if prior.get("pcs") != report["pcs"]:
            failures.append(
                f"distinct path conditions diverged from the "
                f"{prior.get('label', '?')} leg"
            )
    print(
        f"{name}: {report['elapsed_seconds']:.2f}s, "
        f"adopted={report['costmodel_adopted']} "
        f"published={report['costmodel_published']} "
        f"loaded={report['store_loaded']} dumped={report['store_dumped']}"
    )
    for failure in failures:
        print(f"  FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
