"""Table 2(b): DiSE versus full symbolic execution on the WBS artifact."""

from conftest import emit, table2_rows

from repro.artifacts import wbs_artifact
from repro.reporting.tables import render_table2


def run_table2_wbs():
    return table2_rows(wbs_artifact())


def test_table2_wbs(run_once):
    rows = run_once(run_table2_wbs)
    emit("table2_wbs", render_table2(rows, "WBS"))
    assert len(rows) == 16
    for row in rows:
        assert row.dise_path_conditions <= row.full_path_conditions
        assert row.dise_states <= row.full_states
    # as in the paper, several WBS changes affect every path condition, in
    # which case DiSE generates the same number of path conditions as full SE
    assert any(row.dise_path_conditions == row.full_path_conditions for row in rows)
    # and at least some versions show a strict reduction
    assert any(row.dise_path_conditions < row.full_path_conditions for row in rows)
