"""Lookahead memoization benchmark (ours, not a paper table).

Runs every version of the ASW/WBS/OAE artifact histories through directed
symbolic execution twice -- once with the memoized lookahead (persistent
prefix-synced context, walk memo, root-feasibility elision) and once in the
PR 2 baseline mode (fresh context rebuilt per query, root re-proven, no walk
reuse) -- and writes ``BENCH_lookahead.json`` next to this file.

Reported per artifact: lookahead calls, full solver queries, incremental
hits, memo hits, the derived reductions, and whether the two modes produced
identical distinct path conditions on every version (they must: the memo key
covers everything the walk's answer depends on).

Gates (enforced here and by ``run_all.py``):

* ``query_reduction`` -- the memoized mode must issue at least 40% fewer
  lookahead solver queries than the baseline on every artifact with
  baseline query traffic, and so must the three artifacts combined;
* ``decision_reduction`` -- same bar for queries + incremental hits (the
  full solver-decision traffic; this is the binding metric for artifacts
  like OAE whose baseline queries are already all-incremental);
* ``path_conditions_match`` -- every version's distinct path conditions are
  identical across modes.
"""

import json
import os
import time

from repro.artifacts.mutants import asw_artifact, oae_artifact, wbs_artifact
from repro.core.dise import run_dise
from repro.solver.core import ConstraintSolver

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "BENCH_lookahead.json")

#: Minimum fraction of baseline lookahead traffic the memoized mode must cut.
REDUCTION_FLOOR = 0.40


def _run_history(artifact, memoize):
    """One full history pass; fresh solver per version (like the Table 2 legs)."""
    totals = {
        "calls": 0,
        "solver_queries": 0,
        "incremental_hits": 0,
        "cache_hits": 0,
        "walk_memo_hits": 0,
        "prefix_syncs": 0,
    }
    distinct_pcs = []
    base = artifact.base_program()
    started = time.perf_counter()
    for spec in artifact.versions:
        result = run_dise(
            base,
            artifact.version_program(spec.name),
            procedure=artifact.procedure_name,
            solver=ConstraintSolver(),
            lookahead_memoize=memoize,
        )
        statistics = result.execution.statistics
        totals["calls"] += statistics.lookahead_calls
        totals["solver_queries"] += statistics.lookahead_solver_queries
        totals["incremental_hits"] += statistics.lookahead_incremental_hits
        totals["cache_hits"] += statistics.lookahead_cache_hits
        totals["walk_memo_hits"] += statistics.lookahead_walk_memo_hits
        totals["prefix_syncs"] += statistics.lookahead_prefix_syncs
        distinct_pcs.append(
            tuple(sorted(map(str, result.execution.summary.distinct_path_conditions())))
        )
    totals["elapsed_seconds"] = round(time.perf_counter() - started, 6)
    return totals, distinct_pcs


def _reduction(baseline, memoized):
    if baseline <= 0:
        return None
    return round(1.0 - memoized / baseline, 4)


def bench_artifact(artifact):
    baseline, baseline_pcs = _run_history(artifact, memoize=False)
    memoized, memoized_pcs = _run_history(artifact, memoize=True)
    baseline_decisions = baseline["solver_queries"] + baseline["incremental_hits"]
    memoized_decisions = memoized["solver_queries"] + memoized["incremental_hits"]
    return {
        "versions": len(artifact.versions),
        "baseline": baseline,
        "memoized": memoized,
        "query_reduction": _reduction(baseline["solver_queries"], memoized["solver_queries"]),
        "decision_reduction": _reduction(baseline_decisions, memoized_decisions),
        "path_conditions_match": baseline_pcs == memoized_pcs,
        "distinct_path_conditions": sum(len(pcs) for pcs in memoized_pcs),
    }


def check_report(report):
    """The benchmark's own gates; returns a list of failure strings."""
    failures = []
    combined_base_queries = 0
    combined_memo_queries = 0
    combined_base_decisions = 0
    combined_memo_decisions = 0
    for name, row in report.items():
        if name == "combined":
            continue
        combined_base_queries += row["baseline"]["solver_queries"]
        combined_memo_queries += row["memoized"]["solver_queries"]
        combined_base_decisions += (
            row["baseline"]["solver_queries"] + row["baseline"]["incremental_hits"]
        )
        combined_memo_decisions += (
            row["memoized"]["solver_queries"] + row["memoized"]["incremental_hits"]
        )
        if not row["path_conditions_match"]:
            failures.append(f"{name}: memoized and baseline path conditions differ")
        query_reduction = row["query_reduction"]
        if query_reduction is not None and query_reduction < REDUCTION_FLOOR:
            failures.append(
                f"{name}: query_reduction {query_reduction:.3f} below {REDUCTION_FLOOR}"
            )
        decision_reduction = row["decision_reduction"]
        if decision_reduction is not None and decision_reduction < REDUCTION_FLOOR:
            failures.append(
                f"{name}: decision_reduction {decision_reduction:.3f} below {REDUCTION_FLOOR}"
            )
    overall_queries = _reduction(combined_base_queries, combined_memo_queries)
    if overall_queries is not None and overall_queries < REDUCTION_FLOOR:
        failures.append(f"combined query_reduction {overall_queries:.3f} below {REDUCTION_FLOOR}")
    overall_decisions = _reduction(combined_base_decisions, combined_memo_decisions)
    if overall_decisions is not None and overall_decisions < REDUCTION_FLOOR:
        failures.append(
            f"combined decision_reduction {overall_decisions:.3f} below {REDUCTION_FLOOR}"
        )
    return failures, overall_queries, overall_decisions


def run_lookahead_benchmarks():
    """Run all three artifact histories in both modes and persist the report."""
    report = {
        "ASW": bench_artifact(asw_artifact()),
        "WBS": bench_artifact(wbs_artifact()),
        "OAE": bench_artifact(oae_artifact()),
    }
    failures, overall_queries, overall_decisions = check_report(report)
    report["combined"] = {
        "query_reduction": overall_queries,
        "decision_reduction": overall_decisions,
    }
    if failures:
        raise AssertionError("; ".join(failures))
    with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def test_lookahead_memoization(run_once):
    report = run_once(run_lookahead_benchmarks)
    print()
    print(json.dumps(report, indent=2, sort_keys=True))
    for name in ("ASW", "WBS", "OAE"):
        row = report[name]
        assert row["path_conditions_match"]
        binding = (
            row["query_reduction"]
            if row["query_reduction"] is not None
            else row["decision_reduction"]
        )
        assert binding >= REDUCTION_FLOOR
        assert row["memoized"]["walk_memo_hits"] > 0
    assert os.path.exists(RESULTS_PATH)


if __name__ == "__main__":
    print(json.dumps(run_lookahead_benchmarks(), indent=2, sort_keys=True))
