"""Change-impact analysis of the Altitude Switch with DiSE.

For a chosen ASW version the script shows the full DiSE pipeline output that a
reviewer of the change would want to see:

* the source-level diff between the two versions,
* the affected conditional/write nodes (with the CFG exported to Graphviz DOT,
  affected nodes highlighted, changed nodes outlined),
* the DiSE-versus-full-symbolic-execution cost comparison,
* the affected path conditions themselves.

Run with::

    python examples/asw_change_impact.py [version]

The default version is v5 (the altimeter-quality decoding change).
"""

import os
import sys

from repro.artifacts import asw_artifact
from repro.cfg import cfg_to_dot
from repro.core import DiSE, compare_dise_with_full
from repro.diff import diff_procedure_sources
from repro.reporting.tables import render_affected_sets, render_table2


def main() -> None:
    version = sys.argv[1] if len(sys.argv) > 1 else "v5"
    artifact = asw_artifact()
    base = artifact.base_program()
    modified = artifact.version_program(version)
    spec = artifact.version(version)

    print(f"ASW {version}: {spec.description}")
    print()

    print("Source diff:")
    diff = diff_procedure_sources(
        base.procedure(artifact.procedure_name), modified.procedure(artifact.procedure_name)
    )
    print(diff.unified() or "    (no textual difference)")

    dise = DiSE(base, modified, procedure_name=artifact.procedure_name)
    static = dise.compute_affected()
    print(render_affected_sets(static.affected, title="Affected locations"))
    print()

    dot = cfg_to_dot(
        static.cfg_mod,
        highlight=static.affected.all_affected_nodes(),
        changed=static.diff_map.changed_or_added_mod_nodes(),
        title=f"ASW {version}: affected nodes",
    )
    results_dir = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "benchmarks",
        "results",
    )
    os.makedirs(results_dir, exist_ok=True)
    dot_path = os.path.join(results_dir, f"asw_{version}_affected.dot")
    with open(dot_path, "w", encoding="utf-8") as handle:
        handle.write(dot + "\n")
    print(f"Annotated CFG written to {dot_path} (render with: dot -Tpng {dot_path})")
    print()

    row = compare_dise_with_full(
        base, modified, procedure=artifact.procedure_name, version_label=version
    )
    print(render_table2([row], f"ASW {version}"))
    print()

    result = dise.run()
    print(f"Affected path conditions ({len(result.path_conditions)}):")
    for index, condition in enumerate(result.path_conditions[:10]):
        print(f"  [{index}] {condition}")
    if len(result.path_conditions) > 10:
        print(f"  ... {len(result.path_conditions) - 10} more")


if __name__ == "__main__":
    main()
