"""Regression test selection and augmentation on the Wheel Brake System artifact.

This is the paper's §5.2 software-evolution application: tests generated for
the base version by full symbolic execution form the existing suite, DiSE's
affected path conditions are solved into tests for the new version, and a
string comparison classifies them as *selected* (re-usable) or *added* (new
tests that must be written).

Run with::

    python examples/wbs_regression_testing.py [version ...]

Without arguments the script analyses WBS versions v1, v5 and v9.
"""

import sys

from repro.artifacts import wbs_artifact
from repro.core import run_dise
from repro.evolution import generate_tests, select_and_augment
from repro.reporting.tables import render_table3
from repro.symexec import symbolic_execute


def analyse_versions(version_names):
    artifact = wbs_artifact()
    base = artifact.base_program()
    base_procedure = base.procedure(artifact.procedure_name)

    print(f"Artifact: {artifact.name} ({artifact.description})")
    print(f"Analysing versions: {', '.join(version_names)}")
    print()

    base_result = symbolic_execute(base, artifact.procedure_name)
    existing_suite = generate_tests(base_result.summary, base_procedure)
    print(f"Existing suite (full symbolic execution of the base version): "
          f"{len(existing_suite)} tests")
    for call in existing_suite.call_strings()[:5]:
        print(f"    {call}")
    if len(existing_suite) > 5:
        print(f"    ... {len(existing_suite) - 5} more")
    print()

    reports = []
    for name in version_names:
        spec = artifact.version(name)
        modified = artifact.version_program(name)
        dise_result = run_dise(base, modified, procedure=artifact.procedure_name)
        dise_suite = generate_tests(
            dise_result.path_conditions, modified.procedure(artifact.procedure_name)
        )
        report = select_and_augment(
            existing_suite, dise_suite, version=name, changes=spec.change_count
        )
        reports.append(report)
        print(f"{name}: {spec.description}")
        print(f"    affected nodes: {dise_result.affected_node_count}, "
              f"affected path conditions: {len(dise_result.path_conditions)}")
        print(f"    selected {report.selected_count} existing tests, "
              f"added {report.added_count} new tests")
        for call in report.added[:3]:
            print(f"        new test: {call}")
        print()

    print(render_table3(reports, artifact.name))


def main() -> None:
    versions = sys.argv[1:] or ["v1", "v5", "v9"]
    analyse_versions(versions)


if __name__ == "__main__":
    main()
