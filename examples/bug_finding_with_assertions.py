"""Bug finding with DiSE on a program with assertions (paper §5.1).

The paper notes that DiSE supports bug finding when assertions characterise
bugs: ``assert`` statements are de-sugared into a conditional branch plus an
error location, so an assertion violation introduced by a program change shows
up as an affected (error) path condition.

This example writes its own small MiniLang component -- a cruise-control
style speed governor with a safety assertion -- introduces a faulty change,
and uses DiSE to (a) find the assertion violation and (b) produce the
concrete input that triggers it.

Run with::

    python examples/bug_finding_with_assertions.py
"""

from repro import parse_program, run_dise, symbolic_execute
from repro.evolution import generate_tests
from repro.solver import ConstraintSolver

BASE_SOURCE = """\
global int Throttle = 0;

proc govern(int Speed, int Target, bool Override) {
    int Error = Target - Speed;
    if (Override) {
        Error = 0;
    }
    int Command = 0;
    if (Error > 10) {
        Command = 4;
    } else if (Error > 0) {
        Command = 2;
    } else if (Error < 0 - 10) {
        Command = 0 - 4;
    } else {
        Command = 0;
    }
    Throttle = Throttle + Command;
    assert Command <= 4 && Command >= 0 - 4;
}
"""

# The faulty change doubles the aggressive-acceleration command, violating the
# actuator limit captured by the assertion.
MODIFIED_SOURCE = BASE_SOURCE.replace("Command = 4;", "Command = 8;")


def main() -> None:
    base = parse_program(BASE_SOURCE)
    modified = parse_program(MODIFIED_SOURCE)

    print("Checking the base version with full symbolic execution...")
    base_result = symbolic_execute(base, "govern")
    print(f"    {len(base_result.path_conditions)} path conditions, "
          f"{base_result.statistics.error_paths} assertion violations")
    print()

    print("Applying DiSE to the change 'Command = 4' -> 'Command = 8'...")
    dise_result = run_dise(base, modified, procedure="govern")
    errors = dise_result.execution.summary.error_records
    print(f"    affected nodes: {dise_result.affected_node_count}")
    print(f"    affected path conditions: {len(dise_result.path_conditions)}")
    print(f"    assertion violations among them: {len(errors)}")
    print()

    if errors:
        print("Violating path condition(s):")
        solver = ConstraintSolver()
        procedure = modified.procedure("govern")
        for record in errors:
            print(f"    {record.path_condition}")
        suite = generate_tests([r.path_condition for r in errors], procedure, solver)
        print()
        print("Concrete failing inputs (regression tests to add):")
        for call in suite.call_strings():
            print(f"    {call}")
    else:
        print("No assertion violation reachable from the change.")


if __name__ == "__main__":
    main()
